//! Concurrent SpecSPMT: real OS threads over one shared pool, plus the
//! background reclamation daemon.
//!
//! [`crate::SpecSpmt`] models the paper's multi-threaded design with
//! *logical* threads multiplexed on one core (deterministic, good for crash
//! search). This module is the actually-concurrent counterpart on top of
//! [`specpmt_pmem::SharedPmemDevice`]:
//!
//! * [`SpecSpmtShared`] owns the pool, the global commit-timestamp counter
//!   (an `AtomicU64` standing in for `rdtscp`), one log-chain slot per
//!   thread, and the shared free-block list;
//! * each application thread holds a [`TxHandle`] — its own
//!   [`specpmt_pmem::DeviceHandle`] (private flush/fence state) appending to
//!   its own log chain, so disjoint threads never contend beyond the
//!   device's internal sharding;
//! * [`ReclaimDaemon`] is a real `std::thread` (the paper's dedicated
//!   reclamation core): it periodically rebuilds the [`FreshnessIndex`]
//!   from the *committed* records of **all** threads, compacts each chain,
//!   and splices the result in with the two-fence protocol (persist the new
//!   chain, fence; swap the 8-byte head pointer, fence).
//!
//! The on-PM layout (root slots, block chains, record encoding) is
//! identical to the sequential runtime, so [`crate::recovery::recover_image`]
//! recovers images from either.
//!
//! # Freshness across threads
//!
//! An entry may be dropped only when a *younger committed* record covers
//! every byte it logs — never because of an in-flight transaction. The
//! daemon builds its index from committed records only (an open record has
//! a zeroed header, which terminates parsing), and a chain with an open
//! transaction is skipped entirely in the compaction phase. A *stale* index
//! is safe: records committed after the scan are simply treated as fresh.
//!
//! # Lock ordering
//!
//! Per-thread area mutexes are leaf-ish: at most **one** area lock is held
//! at a time, and the free-block lock is only acquired while holding an
//! area lock (never the reverse). Device-internal locks nest below both.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use specpmt_pmem::{
    coalesce_lines, line_of, sites, BlackBoxSink, CrashImage, DeviceHandle, SharedPmemDevice,
    SharedPmemPool, TimingMode, BUMP_OFF, CACHE_LINE,
};
use specpmt_telemetry::{BbKind, EventKind, Metric, Phase, Registry, Telemetry};
use specpmt_txn::{CommitReceipt, GroupBatch, GroupCommitter};

use crate::layout::PoolLayout;
use crate::reclaim::{ReclaimState, ReclaimStats};
use crate::record::{
    encode_checkpoint, encode_header_parts, encode_record, entry_header, parse_chain,
    CheckpointRecord, Cursor, LogArea, LogEntry, SharedStore, REC_HDR,
};
use crate::recovery::{self, RecoveryOptions, RecoveryReport};
use crate::writeset::WriteSet;

/// Configuration for [`SpecSpmtShared`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrentConfig {
    /// Log block size in bytes.
    pub block_bytes: usize,
    /// `true` selects the SpecSPMT-DP variant (data lines flushed with a
    /// second fence at commit).
    pub data_persistence: bool,
    /// Number of application threads (1..=[`PoolLayout::MAX_THREADS`]),
    /// each with its own log chain and [`TxHandle`].
    pub threads: usize,
    /// Aggregate log footprint (bytes) above which the daemon runs a
    /// reclamation cycle.
    pub reclaim_threshold_bytes: usize,
    /// Route commits through the epoch/group-commit path
    /// ([`specpmt_txn::GroupCommitter`]): committers stage their sealed
    /// lines into the open epoch's batch and one combiner issues a single
    /// coalesced flush+fence for the whole batch. Off by default (the
    /// per-commit path is the comparison baseline); the default honours
    /// the `SPECPMT_GROUP_COMMIT` environment variable.
    pub group_commit: bool,
    /// Group-commit batch window in host nanoseconds: a combiner holds
    /// its epoch open in linger-long rounds while commits keep staging
    /// (bounded by [`specpmt_txn::MAX_LINGER_ROUNDS`]). `0` is immediate
    /// drain — batches then form only from natural commit overlap. On a
    /// CPU-oversubscribed host the window is what makes fence batching
    /// real: the combiner's timed wait yields the core to the threads
    /// that are about to commit. The default honours
    /// `SPECPMT_GROUP_LINGER_NS`.
    pub group_linger_ns: u64,
    /// Emit a checkpoint record ([`SpecSpmtShared::write_checkpoint`])
    /// from the reclamation daemon every N completed reclamation cycles,
    /// bounding post-crash replay to data since the last checkpoint. `0`
    /// (the default) disables automatic checkpoints; explicit
    /// `write_checkpoint` calls work either way.
    pub checkpoint_interval_cycles: u64,
    /// Enable the persistent flight recorder: a PM-resident black box of
    /// per-thread event rings ([`specpmt_pmem::BlackBoxSink`]) whose
    /// cache lines piggyback on flushes the commit/reclaim/checkpoint
    /// paths already issue — zero extra fences on the commit path. Off by
    /// default (the default honours `SPECPMT_FLIGHT_RECORDER`); decode a
    /// crash image's surviving rings with
    /// [`crate::recovery::forensics`].
    pub flight_recorder: bool,
    /// Events per flight-recorder ring (one ring per thread plus one for
    /// the daemons). The default honours `SPECPMT_BBOX_CAP`.
    pub bbox_capacity: usize,
    /// Fence-stall threshold (simulated ns) above which the recorder logs
    /// a `fence_stall` event. The default honours `SPECPMT_BBOX_STALL_NS`.
    pub bbox_stall_ns: u64,
    /// **Selftest only** — deliberately stage commit receipts *before*
    /// the commit fence (re-injecting the PR-7 receipt-before-fence bug)
    /// so `crashenum --selftest-forensics` can prove the forensic report
    /// catches the resulting ordering violation. Never set in production
    /// configurations.
    pub bbox_eager_receipts: bool,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            block_bytes: 4096,
            data_persistence: false,
            threads: 1,
            reclaim_threshold_bytes: 1 << 20,
            group_commit: specpmt_telemetry::Knobs::get().group_commit,
            group_linger_ns: specpmt_telemetry::Knobs::get().group_linger_ns,
            checkpoint_interval_cycles: 0,
            flight_recorder: specpmt_telemetry::Knobs::get().flight_recorder,
            bbox_capacity: specpmt_telemetry::Knobs::get()
                .bbox_cap
                .unwrap_or(specpmt_telemetry::blackbox::DEFAULT_RING_CAPACITY),
            bbox_stall_ns: specpmt_telemetry::Knobs::get()
                .bbox_stall_ns
                .unwrap_or(DEFAULT_BBOX_STALL_NS),
            bbox_eager_receipts: false,
        }
    }
}

/// Default fence-stall threshold (simulated ns) for flight-recorder
/// `fence_stall` events when `SPECPMT_BBOX_STALL_NS` is unset.
pub const DEFAULT_BBOX_STALL_NS: u64 = 10_000;

impl ConcurrentConfig {
    /// Starts a builder seeded with the defaults (which honour the
    /// `SPECPMT_*` knobs via [`specpmt_telemetry::Knobs`]). The builder is
    /// the one construction path for non-default configurations — prefer
    /// it over field-struct literals, which `scripts/verify.sh` rejects
    /// outside this module.
    #[must_use]
    pub fn builder() -> ConcurrentConfigBuilder {
        ConcurrentConfigBuilder { cfg: Self::default() }
    }

    /// The SpecSPMT-DP variant of this configuration.
    #[must_use]
    pub fn dp(mut self) -> Self {
        self.data_persistence = true;
        self
    }

    /// Sets the thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the group-commit path.
    #[must_use]
    pub fn with_group_commit(mut self, on: bool) -> Self {
        self.group_commit = on;
        self
    }

    /// Sets the group-commit batch window (see
    /// [`ConcurrentConfig::group_linger_ns`]).
    #[must_use]
    pub fn with_group_linger_ns(mut self, ns: u64) -> Self {
        self.group_linger_ns = ns;
        self
    }
}

/// Builder for [`ConcurrentConfig`], started with
/// [`ConcurrentConfig::builder`]. Every field has a setter; unset fields
/// keep the knob-aware defaults of [`ConcurrentConfig::default`].
///
/// ```
/// use specpmt_core::concurrent::{ConcurrentConfig, SpecSpmtShared};
///
/// let cfg = ConcurrentConfig::builder()
///     .threads(4)
///     .reclaim_threshold_bytes(256 * 1024)
///     .build();
/// let shared = SpecSpmtShared::open_or_format(4 << 20, cfg);
/// assert_eq!(shared.config().threads, 4);
/// ```
#[derive(Debug, Clone)]
pub struct ConcurrentConfigBuilder {
    cfg: ConcurrentConfig,
}

impl ConcurrentConfigBuilder {
    /// Log block size in bytes (see [`ConcurrentConfig::block_bytes`]).
    #[must_use]
    pub fn block_bytes(mut self, bytes: usize) -> Self {
        self.cfg.block_bytes = bytes;
        self
    }

    /// Selects (or deselects) the SpecSPMT-DP variant.
    #[must_use]
    pub fn data_persistence(mut self, on: bool) -> Self {
        self.cfg.data_persistence = on;
        self
    }

    /// Number of application threads
    /// (1..=[`PoolLayout::MAX_THREADS`]).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Aggregate log footprint above which a reclamation cycle runs.
    #[must_use]
    pub fn reclaim_threshold_bytes(mut self, bytes: usize) -> Self {
        self.cfg.reclaim_threshold_bytes = bytes;
        self
    }

    /// Routes commits through the epoch/group-commit path.
    #[must_use]
    pub fn group_commit(mut self, on: bool) -> Self {
        self.cfg.group_commit = on;
        self
    }

    /// Group-commit batch window in host nanoseconds.
    #[must_use]
    pub fn group_linger_ns(mut self, ns: u64) -> Self {
        self.cfg.group_linger_ns = ns;
        self
    }

    /// Reclamation cycles between automatic checkpoints (see
    /// [`ConcurrentConfig::checkpoint_interval_cycles`]; 0 disables).
    #[must_use]
    pub fn checkpoint_interval_cycles(mut self, cycles: u64) -> Self {
        self.cfg.checkpoint_interval_cycles = cycles;
        self
    }

    /// Enables or disables the persistent flight recorder (see
    /// [`ConcurrentConfig::flight_recorder`]).
    #[must_use]
    pub fn flight_recorder(mut self, on: bool) -> Self {
        self.cfg.flight_recorder = on;
        self
    }

    /// Events per flight-recorder ring (see
    /// [`ConcurrentConfig::bbox_capacity`]).
    #[must_use]
    pub fn bbox_capacity(mut self, events: usize) -> Self {
        self.cfg.bbox_capacity = events;
        self
    }

    /// Fence-stall threshold for recorder `fence_stall` events (see
    /// [`ConcurrentConfig::bbox_stall_ns`]).
    #[must_use]
    pub fn bbox_stall_ns(mut self, ns: u64) -> Self {
        self.cfg.bbox_stall_ns = ns;
        self
    }

    /// **Selftest only**: re-inject the receipt-before-fence bug (see
    /// [`ConcurrentConfig::bbox_eager_receipts`]).
    #[must_use]
    pub fn bbox_eager_receipts(mut self, on: bool) -> Self {
        self.cfg.bbox_eager_receipts = on;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> ConcurrentConfig {
        self.cfg
    }
}

/// Where [`SpecSpmtShared::open_or_format`] gets its backing pool.
///
/// The runtime is simulation-backed, so "path or memory" resolves to one
/// of: a fresh device of a given size, a fresh device with explicit
/// [`PmemConfig`] timing/topology, an already-provisioned device, or an
/// existing pool (reopened in place). Each variant converts via `From`,
/// so call sites just pass the thing they have.
#[derive(Debug)]
pub enum PoolSource {
    /// Format a fresh device of this many bytes (default timing model).
    Bytes(usize),
    /// Format a fresh device with this configuration.
    Config(specpmt_pmem::PmemConfig),
    /// Build a pool on an existing device.
    Device(SharedPmemDevice),
    /// Use an existing pool as-is.
    Pool(SharedPmemPool),
}

impl From<usize> for PoolSource {
    fn from(bytes: usize) -> Self {
        PoolSource::Bytes(bytes)
    }
}

impl From<specpmt_pmem::PmemConfig> for PoolSource {
    fn from(cfg: specpmt_pmem::PmemConfig) -> Self {
        PoolSource::Config(cfg)
    }
}

impl From<SharedPmemDevice> for PoolSource {
    fn from(dev: SharedPmemDevice) -> Self {
        PoolSource::Device(dev)
    }
}

impl From<SharedPmemPool> for PoolSource {
    fn from(pool: SharedPmemPool) -> Self {
        PoolSource::Pool(pool)
    }
}

#[derive(Debug)]
struct AreaState {
    area: LogArea,
    /// A transaction is open on this chain (its newest record has a zeroed
    /// header). The daemon must skip the chain while set.
    open: bool,
}

/// Counters for the concurrent runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedStats {
    /// Transactions committed (all threads).
    pub commits: u64,
    /// Transactions aborted (all threads) — compensating restore records
    /// sealed by [`TxHandle::abort`].
    pub aborts: u64,
    /// Reclamation cycles the daemon (or explicit calls) completed.
    pub reclaim_cycles: u64,
    /// Log entries dropped as stale.
    pub records_reclaimed: u64,
    /// Current aggregate log footprint in bytes.
    pub log_live_bytes: u64,
}

/// Shared state of the concurrent SpecSPMT runtime. Wrap it in an [`Arc`]
/// (see [`SpecSpmtShared::new`]) and hand each thread a [`TxHandle`].
#[derive(Debug)]
pub struct SpecSpmtShared {
    pool: SharedPmemPool,
    cfg: ConcurrentConfig,
    /// The persisted layout. Behind a lock because the registration table
    /// can grow at runtime ([`Self::register_thread`] past capacity swaps
    /// in a larger descriptor). Reads are cheap copies.
    layout: RwLock<PoolLayout>,
    /// Next commit timestamp (models `rdtscp`: globally ordered).
    ts: AtomicU64,
    /// One slot per registered chain. The outer lock is write-held only
    /// while a registration appends a slot; the hot paths clone their
    /// slot's `Arc` once at handle creation and never touch the vector.
    areas: RwLock<Vec<Arc<Mutex<AreaState>>>>,
    /// Thread slots returned by [`TxHandle::detach`], reusable by the
    /// next [`Self::register_thread`] (their chains stay valid).
    detached: Mutex<Vec<usize>>,
    /// The live checkpoint chain (None before the first checkpoint);
    /// doubles as the checkpoint-writer serialization lock.
    ckpt_area: Mutex<Option<LogArea>>,
    checkpoints: AtomicU64,
    free_blocks: Mutex<Vec<usize>>,
    commits: AtomicU64,
    aborts: AtomicU64,
    reclaim_cycles: AtomicU64,
    records_reclaimed: AtomicU64,
    stop: AtomicBool,
    /// Stop flag for the group-combiner daemon (separate from `stop` so
    /// the reclaimer and the combiner shut down independently).
    stop_group: AtomicBool,
    /// Incremental-reclamation state (persistent freshness index,
    /// per-chain watermarked scan caches, cycle counters). One reclamation
    /// cycle runs at a time; the mutex serializes explicit calls with the
    /// daemon.
    reclaim: Mutex<ReclaimState>,
    /// Counters, commit-phase histograms, and the lifecycle event tracer.
    /// Sized with one extra shard for the reclamation daemon (`tid ==
    /// cfg.threads`). Off by default; see [`Telemetry`].
    tel: Telemetry,
    /// Epoch/group-commit combiner (used only when `cfg.group_commit`).
    gc: GroupCommitter,
    /// The PM-resident flight recorder (None unless
    /// [`ConcurrentConfig::flight_recorder`]): one event ring per thread
    /// plus one for the daemons, rooted in the layout descriptor's
    /// black-box slot and flushed only by piggybacking on fences the
    /// commit/reclaim/checkpoint paths already issue.
    bbox: Option<Arc<BlackBoxSink>>,
}

impl SpecSpmtShared {
    /// Formats `pool` for `cfg.threads` log chains and returns the shared
    /// runtime. Setup runs with device timing disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.threads` is out of range or the block size is too
    /// small for a record header.
    pub fn new(pool: SharedPmemPool, cfg: ConcurrentConfig) -> Arc<Self> {
        assert!(
            (1..=PoolLayout::MAX_THREADS).contains(&cfg.threads),
            "thread count {} out of range (1..={})",
            cfg.threads,
            PoolLayout::MAX_THREADS
        );
        let dev = pool.device().clone();
        let prev = dev.timing();
        dev.set_timing(TimingMode::Off);
        let layout = PoolLayout::format_shared(&pool, cfg.threads, cfg.block_bytes);
        let handle = pool.handle();
        let mut free = Vec::new();
        let mut areas = Vec::with_capacity(cfg.threads);
        for tid in 0..cfg.threads {
            let mut dirty = Vec::new();
            let area = LogArea::create(
                &mut SharedStore { handle: &handle, pool: &pool, free: &mut free },
                cfg.block_bytes,
                &mut dirty,
            );
            layout.set_head_shared(&pool, tid, area.head() as u64);
            areas.push(Arc::new(Mutex::new(AreaState { area, open: false })));
        }
        // Flight recorder: allocate and format the black-box region (one
        // ring per thread + one daemon ring), root it in the descriptor's
        // v3 slot, and attach the sink to the device so every layer that
        // can reach the pool records through one sink. Still inside the
        // timing-off setup window — the format fence is free.
        let bbox = cfg.flight_recorder.then(|| {
            let rings = cfg.threads + 1;
            let capacity = cfg.bbox_capacity.max(1);
            let bytes = specpmt_telemetry::blackbox::region_bytes(rings, capacity);
            let base =
                pool.alloc_direct(bytes, 64).expect("pool too small for flight-recorder rings");
            let sink =
                Arc::new(BlackBoxSink::format(&handle, base, rings, capacity, cfg.bbox_stall_ns));
            layout.set_bbox_head_shared(&pool, base as u64);
            dev.attach_blackbox(Arc::clone(&sink));
            sink
        });
        dev.flush_everything();
        dev.set_timing(prev);
        // One telemetry shard per transaction thread plus one for the
        // reclamation daemon.
        let tel = Telemetry::new(cfg.threads + 1);
        let gc = GroupCommitter::with_linger(std::time::Duration::from_nanos(cfg.group_linger_ns));
        Arc::new(Self {
            pool,
            cfg,
            layout: RwLock::new(layout),
            ts: AtomicU64::new(1),
            areas: RwLock::new(areas),
            detached: Mutex::new(Vec::new()),
            ckpt_area: Mutex::new(None),
            checkpoints: AtomicU64::new(0),
            free_blocks: Mutex::new(free),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            reclaim_cycles: AtomicU64::new(0),
            records_reclaimed: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            stop_group: AtomicBool::new(false),
            reclaim: Mutex::new(ReclaimState::default()),
            tel,
            gc,
            bbox,
        })
    }

    /// One-stop construction: provisions (or adopts) the backing pool from
    /// any [`PoolSource`] — a byte size, a [`specpmt_pmem::PmemConfig`], a
    /// device, or an existing pool — formats it for `cfg`, and returns the
    /// runtime. This is the single construction path callers should use;
    /// it replaces the former device/pool/new boilerplate:
    ///
    /// ```
    /// use specpmt_core::concurrent::{ConcurrentConfig, SpecSpmtShared};
    ///
    /// let shared = SpecSpmtShared::open_or_format(
    ///     16 << 20,
    ///     ConcurrentConfig::builder().threads(2).build(),
    /// );
    /// let mut h = shared.tx_handle(0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SpecSpmtShared::new`].
    pub fn open_or_format(source: impl Into<PoolSource>, cfg: ConcurrentConfig) -> Arc<Self> {
        let pool = match source.into() {
            PoolSource::Bytes(bytes) => {
                SharedPmemPool::create(SharedPmemDevice::new(specpmt_pmem::PmemConfig::new(bytes)))
            }
            PoolSource::Config(pcfg) => SharedPmemPool::create(SharedPmemDevice::new(pcfg)),
            PoolSource::Device(dev) => SharedPmemPool::create(dev),
            PoolSource::Pool(pool) => pool,
        };
        Self::new(pool, cfg)
    }

    /// The active configuration.
    pub fn config(&self) -> &ConcurrentConfig {
        &self.cfg
    }

    /// The persisted pool layout this runtime formatted (a copy — the
    /// live descriptor can grow when threads register past capacity).
    pub fn layout(&self) -> PoolLayout {
        *self.layout.read().expect("layout lock")
    }

    /// The shared pool.
    pub fn pool(&self) -> &SharedPmemPool {
        &self.pool
    }

    /// The shared device.
    pub fn device(&self) -> &SharedPmemDevice {
        self.pool.device()
    }

    /// The runtime's telemetry bundle: per-thread counters, commit-phase
    /// latency histograms, and the lifecycle event tracer. Disabled by
    /// default; enable with [`Telemetry::set_enabled`] /
    /// [`Telemetry::set_tracing`] or the `SPECPMT_TELEMETRY` /
    /// `SPECPMT_TRACE` environment variables.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// The flight-recorder sink, when [`ConcurrentConfig::flight_recorder`]
    /// is set (`None` otherwise — the recorder-off hot path pays exactly
    /// this `Option` check).
    pub fn blackbox(&self) -> Option<&Arc<BlackBoxSink>> {
        self.bbox.as_ref()
    }

    /// Creates the transaction handle for thread slot `tid`. Each slot must
    /// be driven by at most one thread at a time (the paper's model:
    /// transactions coincide with outermost critical sections; a log chain
    /// belongs to one thread).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn tx_handle(self: &Arc<Self>, tid: usize) -> TxHandle {
        assert!(
            tid < self.cfg.threads,
            "thread {tid} out of range (configured for {})",
            self.cfg.threads
        );
        self.handle_for(tid)
    }

    /// Builds a handle for an already-registered slot (static or dynamic).
    fn handle_for(self: &Arc<Self>, tid: usize) -> TxHandle {
        let area = {
            let areas = self.areas.read().expect("areas lock");
            Arc::clone(&areas[tid])
        };
        // Telemetry is sharded per *configured* thread plus the daemon
        // shard (`cfg.threads`). Dynamically-registered slots fold onto a
        // configured shard so they never collide with the daemon's — the
        // combiner-ownership invariants (committers own zero fences under
        // a daemon) must keep holding with registered threads attached.
        let tel_tid = if tid < self.cfg.threads { tid } else { tid % self.cfg.threads };
        TxHandle {
            shared: Arc::clone(self),
            dev: self.pool.handle(),
            area,
            tid,
            tel_tid,
            in_tx: false,
            tx_start: Cursor { block: 0, pos: 0 },
            ws: WriteSet::new(),
            dirty: Vec::new(),
            data_lines: Vec::new(),
            plan: Vec::new(),
            undo_addrs: Vec::new(),
            undo_data: Vec::new(),
        }
    }

    /// Number of thread slots currently registered (static slots from the
    /// configuration plus dynamically attached ones, including detached
    /// slots awaiting reuse).
    pub fn registered_threads(&self) -> usize {
        self.areas.read().expect("areas lock").len()
    }

    /// Checkpoints written so far (see
    /// [`ConcurrentConfig::checkpoint_interval_cycles`] and
    /// [`Self::write_checkpoint`]).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Dynamically registers a new thread with the runtime and returns its
    /// transaction handle — the paper's fixed `threads`-at-format model
    /// lifted to runtime attach/detach. A detached slot (see
    /// [`TxHandle::detach`]) is reused first; otherwise a fresh chain is
    /// created and, if the registration table is full, the persisted
    /// layout descriptor grows (atomic root-slot swap; old readers keep
    /// working through the legacy fallback).
    ///
    /// # Panics
    ///
    /// Panics if the registration table is at [`PoolLayout::MAX_THREADS`].
    pub fn register_thread(self: &Arc<Self>) -> TxHandle {
        if let Some(tid) = self.detached.lock().expect("detached lock").pop() {
            return self.handle_for(tid);
        }
        let dev = self.device();
        let prev = dev.timing();
        dev.set_timing(TimingMode::Off);
        let tid = {
            let mut areas = self.areas.write().expect("areas lock");
            let tid = areas.len();
            let mut layout = self.layout.write().expect("layout lock");
            if tid >= layout.threads() {
                *layout = layout.grow_shared(&self.pool, tid + 1);
            }
            let handle = self.pool.handle();
            let mut dirty = Vec::new();
            let area = {
                let mut free = self.free_blocks.lock().expect("free lock");
                let mut store = SharedStore { handle: &handle, pool: &self.pool, free: &mut free };
                LogArea::create(&mut store, self.cfg.block_bytes, &mut dirty)
            };
            handle.clwb_ranges(&dirty);
            handle.sfence();
            layout.set_head_shared(&self.pool, tid, area.head() as u64);
            areas.push(Arc::new(Mutex::new(AreaState { area, open: false })));
            tid
        };
        dev.set_timing(prev);
        self.handle_for(tid)
    }

    /// Current aggregate log footprint in bytes.
    pub fn log_footprint(&self) -> usize {
        let areas = self.snapshot_areas();
        areas.iter().map(|a| a.lock().expect("area lock").area.footprint()).sum()
    }

    /// Clones the slot list (cheap: `Arc` per slot) so iteration never
    /// holds the registration lock across per-chain work.
    fn snapshot_areas(&self) -> Vec<Arc<Mutex<AreaState>>> {
        self.areas.read().expect("areas lock").clone()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SharedStats {
        SharedStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            reclaim_cycles: self.reclaim_cycles.load(Ordering::Relaxed),
            records_reclaimed: self.records_reclaimed.load(Ordering::Relaxed),
            log_live_bytes: self.log_footprint() as u64,
        }
    }

    /// Cumulative incremental-reclamation counters (cycles, watermark
    /// skips, rewrites, bytes reclaimed).
    pub fn reclaim_stats(&self) -> ReclaimStats {
        self.reclaim.lock().expect("reclaim lock").stats
    }

    /// Runs one reclamation cycle on the calling thread (the daemon calls
    /// this; tests and benchmarks may too).
    ///
    /// Cycles are incremental (see [`crate::reclaim`]): a chain whose
    /// `(head, generation)` watermark has not moved since the last cycle
    /// is not re-parsed — its cached parse is reused — and a chain whose
    /// compaction drops nothing is not rewritten (no new blocks, no splice
    /// fences). When no chain changed at all, the cycle is a complete
    /// no-op. Otherwise: scan phase parses the changed chains' committed
    /// records into the persistent freshness index; compact phase (per
    /// chain, skipping chains with an open transaction) rewrites with only
    /// fresh entries and splices the new chain in with two fences.
    pub fn reclaim_cycle(&self) {
        let handle = self.pool.handle();
        let t0 = self.device().now_ns();
        // Host wall-clock for telemetry; cycles are rare, so the
        // unconditional `Instant::now()` is well within budget. The daemon
        // records into its dedicated shard (`tid == cfg.threads`).
        let host_t0 = std::time::Instant::now();
        let rtid = self.cfg.threads;
        let areas = self.snapshot_areas();
        let mut rs = self.reclaim.lock().expect("reclaim lock");
        let bytes_before = rs.stats.bytes_reclaimed;
        rs.ensure_chains(areas.len());
        rs.stats.cycles += 1;

        // Phase 1: scan. Chains whose watermark moved are parsed under
        // their lock (consistent snapshot of that chain) and folded into
        // the persistent index; the index may be stale by the time a chain
        // is compacted, which errs toward keeping entries.
        let mut any_changed = false;
        for (tid, slot) in areas.iter().enumerate() {
            let st = slot.lock().expect("area lock");
            let mark = (st.area.head(), st.area.generation());
            if rs.is_current(tid, mark) {
                rs.stats.chains_skipped += 1;
                continue;
            }
            any_changed = true;
            let records = parse_chain(&handle, st.area.head(), self.cfg.block_bytes);
            drop(st);
            rs.install_parse(tid, mark, records);
            rs.stats.chains_scanned += 1;
        }
        if !any_changed {
            // The index is exactly what the previous cycle left behind:
            // every chain it left fully fresh is still fully fresh, and
            // skipping a compaction is always the safe side.
            rs.stats.noop_cycles += 1;
            rs.stats.last_cycle_ns = self.device().now_ns() - t0;
            self.reclaim_cycles.fetch_add(1, Ordering::Relaxed);
            let ns = u64::try_from(host_t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.tel.registry.add(rtid, Metric::ReclaimCycles, 1);
            self.tel.registry.record(rtid, Phase::ReclaimCycle, ns);
            self.tel.tracer.record(rtid, EventKind::ReclaimCycle, 0, ns);
            return;
        }

        // Phase 2: compact each chain from its cached parse.
        let mut dropped_total = 0u64;
        for (tid, slot) in areas.iter().enumerate() {
            let mut st = slot.lock().expect("area lock");
            if st.open {
                continue; // an open record pins the chain
            }
            let mark = (st.area.head(), st.area.generation());
            if !rs.is_current(tid, mark) {
                // The chain advanced between scan and compact: refresh
                // under the lock — records committed since the scan must
                // be preserved (the stale index treats them as fresh).
                let records = parse_chain(&handle, st.area.head(), self.cfg.block_bytes);
                rs.install_parse(tid, mark, records);
                rs.stats.chains_scanned += 1;
            }
            let (kept, dropped, bytes) = rs.compact_chain(tid);
            if dropped == 0 {
                rs.stats.rewrites_skipped += 1;
                continue;
            }
            dropped_total += dropped;
            rs.stats.records_dropped += dropped;
            rs.stats.records_kept += kept.iter().map(|r| r.entries.len() as u64).sum::<u64>();
            rs.stats.bytes_reclaimed += bytes;
            let mut dirty = Vec::new();
            let mut new_area = {
                let mut free = self.free_blocks.lock().expect("free lock");
                let mut store = SharedStore { handle: &handle, pool: &self.pool, free: &mut free };
                let mut area = LogArea::create(&mut store, self.cfg.block_bytes, &mut dirty);
                for rec in &kept {
                    area.append(&mut store, &encode_record(rec), &mut dirty);
                }
                area.write_terminator(&mut store, &mut dirty);
                area
            };
            // Flight recorder: the daemon ring's pending slots ride this
            // cycle's first fence.
            let bbox_carried = match &self.bbox {
                Some(bb) => bb.take_dirty(rtid, &mut dirty),
                None => 0,
            };
            // Fence 1: the new chain is fully persistent before any head
            // pointer references it (one vectored, coalesced flush). The
            // fence is attributed to the daemon's own telemetry shard so
            // per-commit breakdowns never absorb background drains.
            handle.crash_point("mt/reclaim/pre_fence");
            handle.clwb_ranges(&dirty);
            let fr = handle.sfence();
            handle.crash_point("mt/reclaim/fence");
            if bbox_carried > 0 {
                handle.crash_point(sites::BBOX_PERSIST);
            }
            self.tel.registry.add(rtid, Metric::Fences, 1);
            if fr.flushes > 0 {
                self.tel.registry.add(rtid, Metric::WpqDrains, 1);
                if fr.stall_ns > 0 {
                    self.tel.registry.record(rtid, Phase::WpqDrain, fr.stall_ns);
                    self.tel.tracer.record(rtid, EventKind::WpqDrain, fr.stall_ns, fr.flushes);
                }
            }
            // Fence 2: atomically swap the 8-byte head pointer (persisted
            // inside `set_head_shared`; also the daemon's).
            self.layout.read().expect("layout lock").set_head_shared(
                &self.pool,
                tid,
                new_area.head() as u64,
            );
            self.tel.registry.add(rtid, Metric::Fences, 1);
            rs.stats.chains_rewritten += 1;
            rs.commit_rewrite(tid, (new_area.head(), new_area.generation()), kept);
            std::mem::swap(&mut st.area, &mut new_area);
            drop(st);
            // Old blocks are recycled only after the swap fence, so a crash
            // image either references the old chain (intact) or the new.
            let freed = {
                let blocks = new_area.into_blocks();
                let n = blocks.len() as u64;
                self.free_blocks.lock().expect("free lock").extend(blocks);
                n
            };
            handle.crash_point("mt/reclaim/splice");
            if let Some(bb) = &self.bbox {
                bb.record_now(&handle, rtid, BbKind::ReclaimSplice, dropped, freed, 0);
            }
        }
        rs.stats.last_cycle_ns = self.device().now_ns() - t0;
        let bytes = rs.stats.bytes_reclaimed.saturating_sub(bytes_before);
        self.records_reclaimed.fetch_add(dropped_total, Ordering::Relaxed);
        self.reclaim_cycles.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(host_t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.tel.registry.add(rtid, Metric::ReclaimCycles, 1);
        self.tel.registry.record(rtid, Phase::ReclaimCycle, ns);
        self.tel.tracer.record(rtid, EventKind::ReclaimCycle, bytes, ns);
    }

    /// Orderly shutdown: make all durable data reachable without the log.
    pub fn close(&self) {
        self.device().flush_everything();
    }

    /// Spawns the background reclamation daemon (the paper's dedicated
    /// reclamation core as a real OS thread). It polls every `poll`
    /// interval and runs [`Self::reclaim_cycle`] whenever the aggregate
    /// footprint exceeds the configured threshold. Stop (and join) it by
    /// dropping the returned [`ReclaimDaemon`] or calling
    /// [`ReclaimDaemon::stop`].
    pub fn spawn_reclaimer(self: &Arc<Self>, poll: Duration) -> ReclaimDaemon {
        let shared = Arc::clone(self);
        shared.stop.store(false, Ordering::SeqCst);
        let handle = std::thread::Builder::new()
            .name("specpmt-reclaim".into())
            .spawn(move || {
                while !shared.stop.load(Ordering::SeqCst) {
                    if shared.log_footprint() > shared.cfg.reclaim_threshold_bytes {
                        shared.reclaim_cycle();
                        let every = shared.cfg.checkpoint_interval_cycles;
                        if every > 0
                            && shared.reclaim_cycles.load(Ordering::Relaxed).is_multiple_of(every)
                        {
                            shared.write_checkpoint();
                        }
                    } else {
                        std::thread::sleep(poll);
                    }
                }
            })
            .expect("spawn reclaim daemon");
        ReclaimDaemon { shared: Arc::clone(self), handle: Some(handle) }
    }

    /// Spawns the dedicated group-commit combiner thread (the issue's
    /// "handed to the daemon" election mode). While it runs, committing
    /// threads never self-elect: they stage, wake the daemon, and wait
    /// for their epoch's batch fence — so the fence stall against the
    /// device's media backlog is confined to the daemon's timeline and
    /// telemetry shard (`tid == threads`, reported under `daemon` in the
    /// stats block) instead of rotating across every committer's
    /// `commit_sim`. `idle_poll` bounds how long the daemon sleeps
    /// between stop-flag checks when no work is staged.
    ///
    /// Stop (and join) it by dropping the returned handle or calling
    /// [`GroupCombinerDaemon::stop`]; committers blocked mid-wait fall
    /// back to flat combining. Meaningful only with
    /// [`ConcurrentConfig::group_commit`] set.
    pub fn spawn_group_combiner(self: &Arc<Self>, idle_poll: Duration) -> GroupCombinerDaemon {
        let shared = Arc::clone(self);
        shared.stop_group.store(false, Ordering::SeqCst);
        shared.gc.set_daemon_combining(true);
        let handle = std::thread::Builder::new()
            .name("specpmt-groupc".into())
            .spawn(move || {
                let tid = shared.cfg.threads;
                let dev = shared.pool.handle();
                let reg = &shared.tel.registry;
                while !shared.stop_group.load(Ordering::SeqCst) {
                    let report = shared
                        .gc
                        .drain_next(idle_poll, |batch| drain_group_batch(&dev, reg, tid, batch));
                    if let Some(r) = report {
                        record_batch_drained(&shared.tel, tid, &r);
                    }
                }
            })
            .expect("spawn group combiner daemon");
        GroupCombinerDaemon { shared: Arc::clone(self), handle: Some(handle) }
    }

    /// Post-crash recovery (identical image format to [`crate::SpecSpmt`]).
    pub fn recover(image: &mut CrashImage) {
        recovery::recover_image(image);
    }

    /// Post-crash recovery with explicit [`RecoveryOptions`] (parallel
    /// chain parsing, checkpoint-bounded replay). Bit-identical to
    /// [`Self::recover`] for every crash image; returns the cost report.
    pub fn recover_opts(image: &mut CrashImage, opts: &RecoveryOptions) -> RecoveryReport {
        recovery::recover_image_opts(image, opts)
    }

    /// Writes a checkpoint record bounding future recovery replay: the
    /// last-writer-wins fold of every record with commit timestamp `<=
    /// watermark`, where the watermark is the minimum last-committed
    /// timestamp across non-empty chains at scan time. Recovery applies
    /// the checkpoint image first and replays only records younger than
    /// the watermark.
    ///
    /// Soundness of the watermark: a commit timestamp is issued
    /// (`fetch_add`) *before* the area lock is taken in `seal`, but each
    /// chain's timestamps are issued in chain order by its single owning
    /// thread — so any record still in flight on a chain carries a
    /// timestamp greater than that chain's last committed one, hence
    /// greater than the minimum. A chain that is open but has *no*
    /// committed record yet provides no such bound, so the checkpoint is
    /// skipped (returns `None`) in that case. Chains registered after the
    /// snapshot draw timestamps above the counter's snapshot value, which
    /// is above the watermark.
    ///
    /// Returns the watermark, or `None` when no checkpoint could be
    /// written (no committed records, or an open chain without a bound).
    pub fn write_checkpoint(&self) -> Option<u64> {
        let handle = self.pool.handle();
        // The checkpoint-area mutex doubles as the writer lock: one
        // checkpoint at a time, and the old chain stays reachable until
        // the new head is persisted.
        let mut ckpt_guard = self.ckpt_area.lock().expect("ckpt lock");
        let areas = self.snapshot_areas();

        // Scan: per-chain committed records under that chain's lock.
        let mut chains = Vec::with_capacity(areas.len());
        let mut watermark = u64::MAX;
        for slot in &areas {
            let st = slot.lock().expect("area lock");
            let records = parse_chain(&handle, st.area.head(), self.cfg.block_bytes);
            let open = st.open;
            drop(st);
            match records.last() {
                Some(last) => watermark = watermark.min(last.ts),
                // An open chain with nothing committed yet bounds nothing:
                // its in-flight record may carry any timestamp.
                None if open => return None,
                None => {}
            }
            chains.push(records);
        }
        if watermark == u64::MAX {
            return None; // no committed records anywhere
        }

        // Fold records up to the watermark, last writer wins, into one
        // byte map; equal timestamps resolve by ascending chain index —
        // the same tie-break `committed_records` documents.
        let mut indexed: Vec<(u64, usize, &crate::record::LogRecord)> = Vec::new();
        for (idx, records) in chains.iter().enumerate() {
            for rec in records {
                if rec.ts <= watermark {
                    indexed.push((rec.ts, idx, rec));
                }
            }
        }
        if indexed.is_empty() {
            return None;
        }
        indexed.sort_by_key(|&(ts, idx, _)| (ts, idx));
        let mut bytes: BTreeMap<usize, u8> = BTreeMap::new();
        for (_, _, rec) in &indexed {
            for e in &rec.entries {
                for (i, &b) in e.value.iter().enumerate() {
                    bytes.insert(e.addr + i, b);
                }
            }
        }
        // Coalesce the byte map into disjoint, address-sorted runs.
        let mut entries: Vec<LogEntry> = Vec::new();
        for (addr, b) in bytes {
            match entries.last_mut() {
                Some(e) if e.addr + e.value.len() == addr => e.value.push(b),
                _ => entries.push(LogEntry { addr, value: vec![b] }),
            }
        }
        let ckpt = CheckpointRecord { watermark, entries };
        let encoded = encode_checkpoint(&ckpt);

        // Persist protocol: build the new chain, flush+fence it, then
        // atomically swap the descriptor's checkpoint head. A crash at
        // any labeled site leaves either the old checkpoint (intact) or
        // the new one reachable — never a half-spliced head.
        let mut dirty = Vec::new();
        let new_area = {
            let mut free = self.free_blocks.lock().expect("free lock");
            let mut store = SharedStore { handle: &handle, pool: &self.pool, free: &mut free };
            let mut area = LogArea::create(&mut store, self.cfg.block_bytes, &mut dirty);
            area.append(&mut store, &encoded, &mut dirty);
            area
        };
        // Flight recorder: the daemon ring's pending slots ride the
        // checkpoint's persist fence.
        let bbox_carried = match &self.bbox {
            Some(bb) => bb.take_dirty(self.cfg.threads, &mut dirty),
            None => 0,
        };
        handle.crash_point("ckpt/write");
        handle.clwb_ranges(&dirty);
        handle.sfence();
        // Both checkpoint fences land on the daemon's telemetry shard:
        // checkpointing is background work, never a committer's cost.
        self.tel.registry.add(self.cfg.threads, Metric::Fences, 1);
        if bbox_carried > 0 {
            handle.crash_point(sites::BBOX_PERSIST);
        }
        handle.crash_point("ckpt/persist");
        self.layout
            .read()
            .expect("layout lock")
            .set_ckpt_head_shared(&self.pool, new_area.head() as u64);
        self.tel.registry.add(self.cfg.threads, Metric::Fences, 1);
        handle.crash_point("ckpt/splice");
        if let Some(bb) = &self.bbox {
            bb.record_now(
                &handle,
                self.cfg.threads,
                BbKind::CkptSplice,
                ckpt.watermark,
                ckpt.entries.len() as u64,
                0,
            );
        }
        let old = ckpt_guard.replace(new_area);
        drop(ckpt_guard);
        if let Some(old_area) = old {
            self.free_blocks.lock().expect("free lock").extend(old_area.into_blocks());
        }
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Some(watermark)
    }
}

/// One fused flush+fence per non-empty line set of a group batch — log
/// lines first, then DP data lines, the same fence order the per-commit
/// path uses. Fences are counted on `tid`'s telemetry shard; returns the
/// summed `(stall_ns, flushes)` fence report.
fn drain_group_batch(
    dev: &DeviceHandle,
    reg: &Registry,
    tid: usize,
    batch: &specpmt_txn::GroupBatch,
) -> (u64, u64) {
    // Flight recorder: the batch fence covers every stager, so carry
    // every ring's pending event slots with it (folded into the same
    // fused drain — no fence of their own).
    let bbox = dev.device().blackbox();
    let mut bbox_carried = 0;
    let mut lines_with_bbox = Vec::new();
    let log_lines = match &bbox {
        Some(bb) => {
            let mut ranges = Vec::new();
            bbox_carried = bb.take_dirty_all(&mut ranges);
            if bbox_carried == 0 {
                &batch.log_lines
            } else {
                lines_with_bbox.extend_from_slice(&batch.log_lines);
                for (addr, len) in ranges {
                    lines_with_bbox.extend(line_of(addr)..=line_of(addr + len - 1));
                }
                lines_with_bbox.sort_unstable();
                lines_with_bbox.dedup();
                &lines_with_bbox
            }
        }
        None => &batch.log_lines,
    };
    // Every receipt in the batch is still unpublished here; after the
    // fused drain(s) below, all of them are durable at once. Both the
    // flat-combining and daemon drain paths funnel through this function,
    // so the labels cover group commit in every election mode.
    dev.crash_point("mt/group/pre_fence");
    let fr = dev.drain_lines(log_lines);
    reg.add(tid, Metric::Fences, 1);
    let (mut stall, mut flushes) = (fr.stall_ns, fr.flushes);
    if !batch.data_lines.is_empty() {
        let fr = dev.drain_lines(&batch.data_lines);
        reg.add(tid, Metric::Fences, 1);
        stall += fr.stall_ns;
        flushes += fr.flushes;
    }
    dev.crash_point("mt/group/batch_fence");
    if let Some(bb) = &bbox {
        if bbox_carried > 0 {
            dev.crash_point(sites::BBOX_PERSIST);
        }
        let site = sites::index_of("mt/group/batch_fence").unwrap_or(0) as u64;
        bb.record_now(dev, tid, BbKind::BatchSeal, batch.txs, site, 0);
        if stall > bb.stall_threshold_ns() {
            bb.record_now(dev, tid, BbKind::FenceStall, stall, flushes, 0);
        }
    }
    (stall, flushes)
}

/// Batch-drain telemetry tail shared by the combiner paths: the batch
/// size lands in the `group_batch_size` phase and the drain's WPQ stall
/// in `wpq_drain`, all on the draining thread's shard.
fn record_batch_drained(tel: &Telemetry, tid: usize, report: &specpmt_txn::GroupReport) {
    let Some(txs) = report.combined else { return };
    let reg = &tel.registry;
    reg.add(tid, Metric::GroupBatches, 1);
    reg.record(tid, Phase::GroupBatch, txs);
    tel.tracer.record(tid, EventKind::Fence, report.stall_ns, report.flushes);
    if report.flushes > 0 {
        reg.add(tid, Metric::WpqDrains, 1);
        if report.stall_ns > 0 {
            reg.record(tid, Phase::WpqDrain, report.stall_ns);
            tel.tracer.record(tid, EventKind::WpqDrain, report.stall_ns, report.flushes);
        }
    }
}

/// Handle to the background reclamation thread. Dropping it stops and
/// joins the daemon.
#[derive(Debug)]
pub struct ReclaimDaemon {
    shared: Arc<SpecSpmtShared>,
    handle: Option<JoinHandle<()>>,
}

impl ReclaimDaemon {
    /// Stops the daemon and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReclaimDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handle to the dedicated group-commit combiner thread
/// ([`SpecSpmtShared::spawn_group_combiner`]). Dropping it stops and
/// joins the daemon; committers revert to flat combining.
#[derive(Debug)]
pub struct GroupCombinerDaemon {
    shared: Arc<SpecSpmtShared>,
    handle: Option<JoinHandle<()>>,
}

impl GroupCombinerDaemon {
    /// Stops the daemon and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop_group.store(true, Ordering::SeqCst);
        // Clearing the flag wakes stagers blocked on the committer state
        // so they self-elect instead of waiting for a dead daemon; it
        // also wakes the daemon's idle wait so it observes the stop flag.
        self.shared.gc.set_daemon_combining(false);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GroupCombinerDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-thread transaction handle of [`SpecSpmtShared`].
///
/// The API mirrors the sequential runtime's transaction surface (`begin` /
/// `write` / `commit`), but is owned by one OS thread and safe to drive
/// concurrently with the other threads' handles and the daemon. All
/// per-transaction scratch (write set, dirty ranges, undo arena) is owned
/// by the handle and cleared — never freed — between transactions, so a
/// warmed-up handle commits without heap allocation.
#[derive(Debug)]
pub struct TxHandle {
    shared: Arc<SpecSpmtShared>,
    dev: DeviceHandle,
    /// This slot's chain state, cloned out of the registration table at
    /// handle creation — the hot paths never touch the table again, so
    /// dynamic registration on other threads cannot stall a commit.
    area: Arc<Mutex<AreaState>>,
    tid: usize,
    /// Telemetry shard this handle records into: `tid` for configured
    /// slots, folded (`tid % threads`) for dynamically registered ones —
    /// never the daemon shard.
    tel_tid: usize,
    in_tx: bool,
    tx_start: Cursor,
    /// Reusable write set: open-addressing index + payload arena +
    /// streaming record checksum (see [`crate::writeset`]).
    ws: WriteSet,
    /// Dirty `(addr, len)` log ranges of the open transaction; coalesced
    /// into one vectored flush at commit.
    dirty: Vec<(usize, usize)>,
    /// SpecSPMT-DP only: cache-line *indices* of data stores, sorted and
    /// deduplicated at commit for the second (data) flush+fence.
    data_lines: Vec<usize>,
    /// Group-commit only: reusable scratch for this commit's coalesced
    /// log-line plan (the sorted, deduplicated line set staged into the
    /// epoch batch). Cleared, never freed.
    plan: Vec<usize>,
    /// Volatile pre-images of every in-place write of the open
    /// transaction, in write order — the [`TxHandle::abort`] path replays
    /// them in reverse through the normal logging write, turning the
    /// abort into a committed compensating record. Stored as an arena
    /// (`(addr, offset, len)` descriptors over one byte buffer) so the
    /// commit path captures pre-images without per-write allocation.
    undo_addrs: Vec<(usize, usize, usize)>,
    undo_data: Vec<u8>,
}

impl TxHandle {
    /// The shared runtime.
    pub fn shared(&self) -> &Arc<SpecSpmtShared> {
        &self.shared
    }

    /// This handle's thread slot.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The shared device (for crash-epoch observation).
    pub fn device(&self) -> &SharedPmemDevice {
        self.shared.device()
    }

    /// Whether a transaction is open.
    pub fn in_tx(&self) -> bool {
        self.in_tx
    }

    /// Records an application-level event into this thread's
    /// flight-recorder ring (no-op when the recorder is off). Higher
    /// layers — the kv service's `KvOp`/`KvOpDone` markers and governor
    /// decisions — use this; like every recorder write, the slot's
    /// persist rides the next fence this thread already pays, so the
    /// call adds no ordering traffic of its own.
    pub fn record_event(&self, kind: BbKind, a: u64, b: u64, aux: u8) {
        if let Some(bb) = &self.shared.bbox {
            bb.record_now(&self.dev, self.tel_tid, kind, a, b, aux);
        }
    }

    /// Starts a transaction on this thread's chain.
    ///
    /// # Panics
    ///
    /// Panics on nested `begin` (including a second handle driving the same
    /// slot).
    pub fn begin(&mut self) {
        assert!(!self.in_tx, "nested transaction on thread {}", self.tid);
        self.ws.begin();
        self.dirty.clear();
        self.data_lines.clear();
        self.undo_addrs.clear();
        self.undo_data.clear();
        let mut st = self.area.lock().expect("area lock");
        assert!(!st.open, "thread slot {} already has an open transaction", self.tid);
        st.open = true;
        self.tx_start = st.area.tail();
        // Reserve the header: zero length marks the record open/uncommitted.
        {
            let mut free = self.shared.free_blocks.lock().expect("free lock");
            let mut store =
                SharedStore { handle: &self.dev, pool: &self.shared.pool, free: &mut free };
            st.area.append(&mut store, &[0u8; REC_HDR], &mut self.dirty);
        }
        drop(st);
        self.in_tx = true;
        self.shared.tel.registry.add(self.tel_tid, Metric::Begins, 1);
        self.shared.tel.tracer.record(self.tel_tid, EventKind::Begin, 0, 0);
        if let Some(bb) = &self.shared.bbox {
            bb.record_now(&self.dev, self.tel_tid, BbKind::TxBegin, 0, 0, 0);
        }
    }

    /// Durably writes `data` at pool offset `addr` within the open
    /// transaction: in-place data update (never flushed by SpecSPMT) plus a
    /// speculative log entry of the new value.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn write(&mut self, addr: usize, data: &[u8]) {
        assert!(self.in_tx, "write outside transaction");
        let _ws_span = self.shared.tel.registry.span(self.tel_tid, Phase::Writeset);
        self.shared.tel.tracer.record(
            self.tel_tid,
            EventKind::Stage,
            addr as u64,
            data.len() as u64,
        );
        if !data.is_empty() {
            // Volatile pre-image for the abort path, captured into the
            // reusable undo arena. `peek_into` is untimed and unsampled,
            // so the bookkeeping does not distort the simulated cost of
            // the write itself.
            let off = self.undo_data.len();
            self.undo_data.resize(off + data.len(), 0);
            self.dev.peek_into(addr, &mut self.undo_data[off..]);
            self.undo_addrs.push((addr, off, data.len()));
        }
        self.dev.write(addr, data);
        if self.shared.cfg.data_persistence && !data.is_empty() {
            let first = addr / CACHE_LINE;
            let last = (addr + data.len() - 1) / CACHE_LINE;
            // Line *indices*; sorted and deduplicated once, at commit.
            self.data_lines.extend(first..=last);
        }
        let mut st = self.area.lock().expect("area lock");
        if let Some(slot) = self.ws.lookup(addr) {
            if slot.len == data.len() {
                // Write-set indexing: overwrite the previous entry in place.
                self.ws.patch(slot, data);
                let mut free = self.shared.free_blocks.lock().expect("free lock");
                let mut store =
                    SharedStore { handle: &self.dev, pool: &self.shared.pool, free: &mut free };
                st.area.write_at(&mut store, slot.value_cursor, data, &mut self.dirty);
                return;
            }
        }
        let value_cursor = {
            let mut free = self.shared.free_blocks.lock().expect("free lock");
            let mut store =
                SharedStore { handle: &self.dev, pool: &self.shared.pool, free: &mut free };
            st.area.append(&mut store, &entry_header(addr, data.len()), &mut self.dirty);
            let cursor = st.area.tail();
            st.area.append(&mut store, data, &mut self.dirty);
            cursor
        };
        drop(st);
        self.ws.stage(addr, data, value_cursor);
        self.shared.tel.registry.add(self.tel_tid, Metric::LogEntries, 1);
    }

    /// Reads `buf.len()` bytes at `addr` (direct in-place access — SpecPMT
    /// never redirects reads).
    pub fn read(&self, addr: usize, buf: &mut [u8]) {
        self.dev.read(addr, buf);
    }

    /// Transactionally allocates from the shared heap; the bump update
    /// rides the speculative log, making the allocation crash-atomic with
    /// the transaction.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction or when the heap is exhausted.
    pub fn alloc(&mut self, size: usize, align: usize) -> usize {
        assert!(self.in_tx, "alloc outside transaction");
        let r = self.shared.pool.reserve(size, align).expect("pool heap exhausted");
        if let Some(bump) = r.new_bump {
            self.write(BUMP_OFF, &bump.to_le_bytes());
        }
        r.off
    }

    /// Seals the open record: timestamped, checksummed header plus the
    /// single SpecSPMT flush+fence. Shared tail of [`TxHandle::commit`] and
    /// [`TxHandle::abort`].
    /// `commit`: `true` for commit seals — they may ride the group-commit
    /// batch window and record the `commit_sim` phase. `false` for
    /// compensating (abort) records, which always fence solo: an aborting
    /// transaction holds 2PL stripes its retry (and every conflicting
    /// thread) is waiting on, so it releases them immediately instead of
    /// parking in a batch window. Routing aborts through the window also
    /// feeds the window's staged-growth check, extending it and dooming
    /// yet more lock waiters — a retry storm.
    /// `urgent`: a commit seal that must release contended resources
    /// fast — it still stages into the batch (amortized fence) but slams
    /// the window shut ([`GroupCommitter::commit_urgent`]).
    fn seal(&mut self, commit: bool, urgent: bool) -> u64 {
        assert!(self.in_tx, "commit outside transaction");
        if self.ws.payload().is_empty() {
            // A zero-length record header is the chain terminator, so an
            // empty (read-only or write-free) transaction must not seal a
            // zero-length record — it would orphan every younger record
            // behind it. Pad with one zero-length entry: the payload becomes
            // one entry header, and recovery replays it as a no-op.
            self.write(0, &[]);
        }
        let tid = self.tel_tid;
        // Everything at this level borrows local clones of the Arcs (not
        // `self`) so the flush/fence tails below can take `&mut self`
        // while the spans and the area lock stay live.
        let shared = Arc::clone(&self.shared);
        let area = Arc::clone(&self.area);
        let commit_span = shared.tel.registry.span(tid, Phase::Commit);
        let sim0 = self.dev.local_now_ns();
        let seal_span = shared.tel.registry.span(tid, Phase::Seal);
        let ts = shared.ts.fetch_add(1, Ordering::SeqCst);
        // Seal: the record checksum was streamed while entries were
        // staged; only the fixed `(len, ts)` suffix is folded in here.
        let header = encode_header_parts(ts, self.ws.payload().len(), self.ws.checksum(ts));
        seal_span.stop();
        let append_span = shared.tel.registry.span(tid, Phase::Append);
        let mut st = area.lock().expect("area lock");
        {
            let mut free = self.shared.free_blocks.lock().expect("free lock");
            let mut store =
                SharedStore { handle: &self.dev, pool: &self.shared.pool, free: &mut free };
            let wrote = st.area.write_at(&mut store, self.tx_start, &header, &mut self.dirty);
            assert_eq!(wrote, REC_HDR, "record header must fit in the chain");
            st.area.write_terminator(&mut store, &mut self.dirty);
        }
        append_span.stop();
        // One record appended per sealed transaction — same counter
        // semantics as the sequential runtime (per-entry staging is
        // counted separately as `log_entries` in `write`).
        self.shared.tel.registry.add(tid, Metric::LogAppends, 1);
        self.shared.tel.tracer.record(tid, EventKind::Seal, ts, self.ws.payload().len() as u64);
        self.dev.crash_point("mt/commit/append");

        if commit && shared.cfg.bbox_eager_receipts {
            if let Some(bb) = &shared.bbox {
                // Selftest-only bug re-injection (PR 7's receipt-before-
                // fence): publish the commit receipt durably *before* the
                // commit fence. A crash between here and the fence leaves
                // a persisted TxCommit whose record never became durable —
                // exactly the violation `forensics` must catch.
                let site = sites::index_of("mt/group/pre_fence").unwrap_or(0) as u64;
                let (addr, len) = bb.record_now(&self.dev, tid, BbKind::TxCommit, ts, site, 1);
                self.dev.persist_range(addr, len);
            }
        }

        if self.shared.cfg.group_commit && commit {
            self.seal_group(tid, urgent);
        } else {
            self.seal_solo(tid);
        }
        // Simulated device nanoseconds this thread's timeline was charged
        // for the seal (stores + flush issue + fence stall). Group-commit
        // waiters charge only their append work — the combiner's timeline
        // absorbs the shared batch drain. Abort seals are excluded: this
        // is a per-*commit* cost metric, and compensating records always
        // fence solo.
        if commit {
            shared.tel.registry.record(
                tid,
                Phase::CommitSim,
                self.dev.local_now_ns().saturating_sub(sim0),
            );
        }
        if commit && !shared.cfg.bbox_eager_receipts {
            if let Some(bb) = &shared.bbox {
                // Commit receipt, staged only now — after the fence that
                // made the record durable returned. This ordering is the
                // forensic tail invariant: a persisted TxCommit implies
                // its record was already in the persisted image. The slot
                // itself rides the *next* already-scheduled fence.
                let (site, aux) = if shared.cfg.group_commit {
                    (sites::index_of("mt/group/batch_fence"), 1)
                } else {
                    (sites::index_of("mt/commit/fence"), 0)
                };
                bb.record_now(&self.dev, tid, BbKind::TxCommit, ts, site.unwrap_or(0) as u64, aux);
            }
        }

        // Lock release: hand the chain back to the daemon.
        let lock_span = self.shared.tel.registry.span(tid, Phase::LockRelease);
        st.open = false;
        drop(st);
        lock_span.stop();
        self.in_tx = false;
        self.undo_addrs.clear();
        self.undo_data.clear();
        let commit_ns = commit_span.stop();
        self.shared.tel.tracer.record(tid, EventKind::Commit, ts, commit_ns);
        ts
    }

    /// Per-commit flush+fence tail of [`Self::seal`] — the comparison
    /// baseline: this thread pays a full vectored flush and fence for its
    /// own record (plus a second pair for DP data lines). Called with the
    /// area lock held.
    fn seal_solo(&mut self, tid: usize) {
        // Flight recorder: fold this ring's pending event slots into the
        // commit flush below — they ride the fence this commit already
        // pays, never one of their own.
        let bbox_carried = match &self.shared.bbox {
            Some(bb) => bb.take_dirty(tid, &mut self.dirty),
            None => 0,
        };
        // The single commit fence: one vectored flush covering the whole
        // record (coalesced, ascending lines) and nothing else. The area
        // lock is held through the fence so the daemon never splices a
        // chain whose newest record is mid-persist. The dirty list is
        // cleared, not freed.
        let flush_span = self.shared.tel.registry.span(tid, Phase::Flush);
        self.dev.clwb_ranges(&self.dirty);
        flush_span.stop();
        self.shared.tel.registry.add(tid, Metric::ClwbPlans, 1);
        self.shared.tel.tracer.record(tid, EventKind::ClwbPlan, self.dirty.len() as u64, 0);
        self.dirty.clear();
        self.dev.crash_point("mt/commit/flush");
        let fence_span = self.shared.tel.registry.span(tid, Phase::Fence);
        let fr = self.dev.sfence();
        fence_span.stop();
        self.dev.crash_point("mt/commit/fence");
        if let Some(bb) = &self.shared.bbox {
            if bbox_carried > 0 {
                self.dev.crash_point(sites::BBOX_PERSIST);
            }
            if fr.stall_ns > bb.stall_threshold_ns() {
                bb.record_now(&self.dev, tid, BbKind::FenceStall, fr.stall_ns, fr.flushes, 0);
            }
        }
        self.shared.tel.registry.add(tid, Metric::Fences, 1);
        self.shared.tel.tracer.record(tid, EventKind::Fence, fr.stall_ns, fr.flushes);
        if fr.flushes > 0 {
            self.shared.tel.registry.add(tid, Metric::WpqDrains, 1);
            if fr.stall_ns > 0 {
                self.shared.tel.registry.record(tid, Phase::WpqDrain, fr.stall_ns);
                self.shared.tel.tracer.record(tid, EventKind::WpqDrain, fr.stall_ns, fr.flushes);
            }
        }

        if self.shared.cfg.data_persistence {
            // SpecSPMT-DP: also persist the data lines (second fence).
            self.data_lines.sort_unstable();
            self.data_lines.dedup();
            let flush_span = self.shared.tel.registry.span(tid, Phase::Flush);
            self.dev.clwb_lines(&self.data_lines);
            flush_span.stop();
            self.shared.tel.registry.add(tid, Metric::ClwbPlans, 1);
            self.shared.tel.tracer.record(
                tid,
                EventKind::ClwbPlan,
                self.data_lines.len() as u64,
                0,
            );
            self.data_lines.clear();
            // DP's second drain reuses the commit flush/fence labels (same
            // ordering invariant, same protocol step — see the sequential
            // runtime's note).
            self.dev.crash_point("mt/commit/flush");
            let fence_span = self.shared.tel.registry.span(tid, Phase::Fence);
            let fr = self.dev.sfence();
            fence_span.stop();
            self.dev.crash_point("mt/commit/fence");
            self.shared.tel.registry.add(tid, Metric::Fences, 1);
            self.shared.tel.tracer.record(tid, EventKind::Fence, fr.stall_ns, fr.flushes);
            if fr.flushes > 0 {
                self.shared.tel.registry.add(tid, Metric::WpqDrains, 1);
                if fr.stall_ns > 0 {
                    self.shared.tel.registry.record(tid, Phase::WpqDrain, fr.stall_ns);
                    self.shared.tel.tracer.record(
                        tid,
                        EventKind::WpqDrain,
                        fr.stall_ns,
                        fr.flushes,
                    );
                }
            }
        }
    }

    /// Group-commit tail of [`Self::seal`]: coalesce this record's lines,
    /// stage them into the open epoch's batch, and block until a batch
    /// fence covering them retires. Whichever staged thread combines the
    /// epoch issues one fused [`DeviceHandle::drain_lines`] for the whole
    /// batch's log lines (plus one for staged DP data lines) — durability
    /// is identical to [`Self::seal_solo`], fences are amortized across
    /// the batch. Called with the area lock held: 2PL semantics keep the
    /// record's region locked until the receipt anyway, and the daemon
    /// skips open chains, so waiting under the lock is safe (the combiner
    /// takes no area locks).
    fn seal_group(&mut self, tid: usize, urgent: bool) {
        coalesce_lines(&self.dirty, &mut self.plan);
        self.dirty.clear();
        self.data_lines.sort_unstable();
        self.data_lines.dedup();
        self.shared.tel.registry.add(tid, Metric::ClwbPlans, 1);
        self.shared.tel.tracer.record(tid, EventKind::ClwbPlan, self.plan.len() as u64, 0);
        let reg = &self.shared.tel.registry;
        let dev = &self.dev;
        dev.crash_point("mt/group/stage");
        let wait_span = reg.span(tid, Phase::BatchWait);
        // If this thread combines, the drain issues one fused flush+fence
        // per non-empty line set from *its* handle (fences cover only the
        // issuing handle's flushes). With a combiner daemon attached, the
        // closure never runs here — the daemon drains from its own handle.
        let drain = |batch: &GroupBatch| drain_group_batch(dev, reg, tid, batch);
        let report = if urgent {
            self.shared.gc.commit_urgent(&self.plan, &self.data_lines, drain)
        } else {
            self.shared.gc.commit(&self.plan, &self.data_lines, drain)
        };
        wait_span.stop();
        self.plan.clear();
        self.data_lines.clear();
        reg.add(tid, Metric::GroupCommits, 1);
        record_batch_drained(&self.shared.tel, tid, &report);
    }

    /// Commits the open transaction with the single SpecSPMT flush+fence;
    /// returns the [`CommitReceipt`] carrying the global commit timestamp.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn commit(&mut self) -> CommitReceipt {
        self.commit_with(false)
    }

    /// Commits like [`TxHandle::commit`] but slams the group-commit batch
    /// window shut: the record still rides the shared batch fence
    /// (amortized, not a solo drain), but the epoch drains immediately
    /// instead of lingering for more arrivals. Lock-based callers use
    /// this for contended transactions — parking a stripe other threads
    /// are spinning on across a full batch window would exhaust their
    /// try-lock budgets and doom them. No-op distinction when group
    /// commit is disabled.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn commit_urgent(&mut self) -> CommitReceipt {
        self.commit_with(true)
    }

    fn commit_with(&mut self, urgent: bool) -> CommitReceipt {
        let ts = self.seal(true, urgent);
        self.shared.commits.fetch_add(1, Ordering::Relaxed);
        self.shared.tel.registry.add(self.tel_tid, Metric::Commits, 1);
        CommitReceipt::new(ts)
    }

    /// Aborts the open transaction.
    ///
    /// SpecPMT writes in place before commit, so aborting must *restore*:
    /// the volatile pre-images captured by [`TxHandle::write`] are replayed
    /// in reverse through the normal logging write path, and the record is
    /// then sealed exactly like a commit. The youngest-committed-record-wins
    /// recovery rule makes the compensating record authoritative: after a
    /// crash at any point — before, during, or after the abort — the
    /// pre-transaction values win.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction.
    pub fn abort(&mut self) {
        assert!(self.in_tx, "abort outside transaction");
        // Take the arenas so the replay can borrow the pre-image bytes
        // while `write` mutates the handle; they are handed back below so
        // their capacity survives (the replay's own pre-image captures go
        // into fresh vectors and are discarded — `seal` clears them).
        let addrs = std::mem::take(&mut self.undo_addrs);
        let data = std::mem::take(&mut self.undo_data);
        for &(addr, off, len) in addrs.iter().rev() {
            self.write(addr, &data[off..off + len]);
        }
        self.undo_addrs = addrs;
        self.undo_data = data;
        let _ = self.seal(false, false);
        self.shared.aborts.fetch_add(1, Ordering::Relaxed);
        self.shared.tel.registry.add(self.tel_tid, Metric::Aborts, 1);
        if let Some(bb) = &self.shared.bbox {
            bb.record_now(&self.dev, self.tel_tid, BbKind::TxAbort, 0, 0, 0);
        }
    }

    /// Detaches this handle's thread slot from the runtime, returning the
    /// slot to the registration free list — the next
    /// [`SpecSpmtShared::register_thread`] reuses it (and its chain, which
    /// stays valid and recoverable throughout).
    ///
    /// # Panics
    ///
    /// Panics with an open transaction.
    pub fn detach(self) {
        assert!(!self.in_tx, "detach with open transaction on thread {}", self.tid);
        self.shared.detached.lock().expect("detached lock").push(self.tid);
    }
}

impl specpmt_txn::TxAccess for TxHandle {
    fn begin(&mut self) {
        TxHandle::begin(self);
    }

    fn write(&mut self, addr: usize, data: &[u8]) {
        TxHandle::write(self, addr, data);
    }

    fn read(&mut self, addr: usize, buf: &mut [u8]) {
        TxHandle::read(self, addr, buf);
    }

    fn commit(&mut self) {
        let _ = TxHandle::commit(self);
    }

    fn abort(&mut self) {
        TxHandle::abort(self);
    }

    fn alloc(&mut self, size: usize, align: usize) -> usize {
        TxHandle::alloc(self, size, align)
    }

    fn free(&mut self, _addr: usize, _size: usize, _align: usize) {
        // Bump allocator: frees are a no-op, same as the sequential runtime.
    }

    fn in_tx(&self) -> bool {
        self.in_tx
    }

    fn compute(&mut self, ns: u64) {
        self.dev.advance(ns);
    }

    fn local_now_ns(&self) -> u64 {
        self.dev.local_now_ns()
    }

    fn set_timing(&mut self, mode: TimingMode) -> TimingMode {
        let prev = self.shared.device().timing();
        self.shared.device().set_timing(mode);
        prev
    }

    fn setup_alloc(&mut self, bytes: usize, align: usize) -> usize {
        let prev = self.shared.device().timing();
        self.shared.device().set_timing(TimingMode::Off);
        let base = self.shared.pool.alloc_direct(bytes, align).expect("setup_alloc");
        self.dev.persist_range(base, bytes);
        self.shared.device().set_timing(prev);
        base
    }

    fn setup_write(&mut self, addr: usize, data: &[u8]) {
        let prev = self.shared.device().timing();
        self.shared.device().set_timing(TimingMode::Off);
        self.dev.write(addr, data);
        self.dev.persist_range(addr, data.len());
        self.shared.device().set_timing(prev);
    }
}

impl specpmt_txn::TxThread for TxHandle {
    fn begin(&mut self) {
        TxHandle::begin(self);
    }

    fn write(&mut self, addr: usize, data: &[u8]) {
        TxHandle::write(self, addr, data);
    }

    fn commit(&mut self) -> u64 {
        TxHandle::commit(self).ts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::{CrashControl, CrashPolicy};
    use specpmt_txn::TxAccess as _;

    fn shared(cfg: ConcurrentConfig) -> Arc<SpecSpmtShared> {
        SpecSpmtShared::open_or_format(1usize << 22, cfg)
    }

    fn alloc_region(s: &Arc<SpecSpmtShared>, bytes: usize) -> usize {
        let base = s.pool().alloc_direct(bytes, 64).unwrap();
        let prev = s.device().timing();
        s.device().set_timing(TimingMode::Off);
        s.pool().handle().persist_range(base, bytes);
        s.device().set_timing(prev);
        base
    }

    #[test]
    fn committed_value_survives_all_lost_crash() {
        let s = shared(ConcurrentConfig::default());
        let a = alloc_region(&s, 64);
        let mut h = s.tx_handle(0);
        h.begin();
        h.write_u64(a, 0xFEED);
        h.commit();
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        assert_eq!(img.read_u64(a), 0xFEED);
    }

    #[test]
    fn uncommitted_tx_is_revoked_even_if_data_evicted() {
        let s = shared(ConcurrentConfig::default());
        let a = alloc_region(&s, 64);
        let mut h = s.tx_handle(0);
        h.begin();
        h.write_u64(a, 1);
        h.commit();
        h.begin();
        h.write_u64(a, 2);
        let mut img = s.device().capture(CrashPolicy::AllSurvive);
        SpecSpmtShared::recover(&mut img);
        assert_eq!(img.read_u64(a), 1, "uncommitted update must be revoked");
    }

    #[test]
    fn exactly_one_fence_per_commit() {
        let s = shared(ConcurrentConfig::default());
        let a = alloc_region(&s, 256);
        let mut h = s.tx_handle(0);
        let before = s.device().stats().sfence_count;
        h.begin();
        for i in 0..8 {
            h.write_u64(a + i * 8, i as u64);
        }
        h.commit();
        let after = s.device().stats().sfence_count;
        assert_eq!(after - before, 1, "SpecSPMT commits with a single fence");
    }

    #[test]
    fn parallel_threads_commit_disjoint_regions() {
        let s = shared(ConcurrentConfig::default().with_threads(4));
        let base = alloc_region(&s, 4 * 64);
        std::thread::scope(|scope| {
            for tid in 0..4 {
                let s = &s;
                let mut h = s.tx_handle(tid);
                scope.spawn(move || {
                    for v in 0..50u64 {
                        h.begin();
                        h.write_u64(base + tid * 64, v);
                        h.commit();
                    }
                });
            }
        });
        assert_eq!(s.stats().commits, 200);
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        for tid in 0..4 {
            assert_eq!(img.read_u64(base + tid * 64), 49);
        }
    }

    #[test]
    fn cross_thread_freshness_respected_by_reclaim() {
        // Thread 1's younger commit to the same address must stale thread
        // 0's record — and never the other way around.
        let s = shared(ConcurrentConfig::default().with_threads(2));
        let a = alloc_region(&s, 64);
        let mut h0 = s.tx_handle(0);
        let mut h1 = s.tx_handle(1);
        h0.begin();
        h0.write_u64(a, 10);
        h0.commit();
        h1.begin();
        h1.write_u64(a, 20);
        h1.commit();
        s.reclaim_cycle();
        assert!(s.stats().records_reclaimed > 0, "older cross-thread entry dropped");
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        assert_eq!(img.read_u64(a), 20, "youngest commit wins after compaction");
    }

    #[test]
    fn reclaim_skips_chain_with_open_tx() {
        let s = shared(ConcurrentConfig::default().with_threads(2));
        let a = alloc_region(&s, 64);
        let mut h0 = s.tx_handle(0);
        let mut h1 = s.tx_handle(1);
        for v in 0..100u64 {
            h0.begin();
            h0.write_u64(a, v);
            h0.commit();
        }
        h1.begin();
        h1.write_u64(a + 32, 7);
        s.reclaim_cycle(); // must not touch h1's chain
        h1.commit();
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        assert_eq!(img.read_u64(a), 99);
        assert_eq!(img.read_u64(a + 32), 7);
    }

    #[test]
    fn daemon_bounds_log_footprint() {
        let s = shared(
            ConcurrentConfig::builder().threads(2).reclaim_threshold_bytes(64 * 1024).build(),
        );
        let base = alloc_region(&s, 2 * 64);
        let daemon = s.spawn_reclaimer(Duration::from_micros(200));
        std::thread::scope(|scope| {
            for tid in 0..2 {
                let s = &s;
                let mut h = s.tx_handle(tid);
                scope.spawn(move || {
                    for v in 0..5_000u64 {
                        h.begin();
                        h.write_u64(base + tid * 64, v);
                        h.commit();
                    }
                });
            }
        });
        daemon.stop();
        let st = s.stats();
        assert!(st.reclaim_cycles > 0, "daemon never ran");
        // One final cycle with no open transactions bounds the tail.
        s.reclaim_cycle();
        assert!(s.log_footprint() <= 2 * 64 * 1024, "footprint {} not bounded", s.log_footprint());
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        for tid in 0..2 {
            assert_eq!(img.read_u64(base + tid * 64), 4_999);
        }
    }

    #[test]
    fn transactional_alloc_is_crash_atomic() {
        let s = shared(ConcurrentConfig::default());
        let root = alloc_region(&s, 64);
        let mut h = s.tx_handle(0);
        h.begin();
        let obj = h.alloc(32, 8);
        h.write_u64(obj, 77);
        h.write_u64(root, obj as u64);
        h.commit();
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        let obj2 = img.read_u64(root) as usize;
        assert_eq!(obj2, obj);
        assert_eq!(img.read_u64(obj2), 77);
    }

    #[test]
    fn dp_variant_persists_data_with_second_fence() {
        let s = shared(ConcurrentConfig::default().dp());
        let a = alloc_region(&s, 64);
        let mut h = s.tx_handle(0);
        let before = s.device().stats().sfence_count;
        h.begin();
        h.write_u64(a, 5);
        h.commit();
        assert_eq!(s.device().stats().sfence_count - before, 2);
        let img = s.device().capture(CrashPolicy::AllLost);
        assert_eq!(img.read_u64(a), 5, "DP data survives without recovery");
    }

    #[test]
    fn seventeen_parallel_threads_commit_and_recover() {
        // Past the legacy 8-root-slot cap: every chain head lives in the
        // dynamic descriptor's head table.
        let threads = 17usize;
        let s = shared(ConcurrentConfig::default().with_threads(threads));
        assert!(s.layout().is_dynamic());
        let base = alloc_region(&s, threads * 64);
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let s = &s;
                let mut h = s.tx_handle(tid);
                scope.spawn(move || {
                    for v in 0..20u64 {
                        h.begin();
                        h.write_u64(base + tid * 64, v);
                        h.commit();
                    }
                });
            }
        });
        assert_eq!(s.stats().commits, threads as u64 * 20);
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        for tid in 0..threads {
            assert_eq!(img.read_u64(base + tid * 64), 19, "thread {tid}");
        }
    }

    #[test]
    fn reclaim_splices_heads_in_the_descriptor_table() {
        let s = shared(ConcurrentConfig::default().with_threads(12));
        let a = alloc_region(&s, 64);
        let mut h = s.tx_handle(11);
        for v in 0..500u64 {
            h.begin();
            h.write_u64(a, v);
            h.commit();
        }
        s.reclaim_cycle();
        assert!(s.stats().records_reclaimed > 0);
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        assert_eq!(img.read_u64(a), 499);
    }

    #[test]
    fn group_commit_value_survives_all_lost_crash() {
        let s = shared(ConcurrentConfig::default().with_group_commit(true));
        let a = alloc_region(&s, 64);
        let mut h = s.tx_handle(0);
        h.begin();
        h.write_u64(a, 0xFEED);
        h.commit();
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        assert_eq!(img.read_u64(a), 0xFEED);
    }

    /// An uncontended group commit is a batch of one: exactly one fence,
    /// same as the per-commit path.
    #[test]
    fn group_commit_solo_is_one_fence_batch_of_one() {
        let s = shared(ConcurrentConfig::default().with_group_commit(true));
        s.telemetry().set_enabled(true);
        let a = alloc_region(&s, 256);
        let mut h = s.tx_handle(0);
        let before = s.device().stats().sfence_count;
        h.begin();
        for i in 0..8 {
            h.write_u64(a + i * 8, i as u64);
        }
        h.commit();
        assert_eq!(s.device().stats().sfence_count - before, 1);
        let reg = &s.telemetry().registry;
        assert_eq!(reg.counter(Metric::GroupCommits), 1);
        assert_eq!(reg.counter(Metric::GroupBatches), 1);
        let occ = reg.phase(Phase::GroupBatch);
        assert_eq!(occ.count(), 1);
    }

    /// Group-mode DP commits drain data lines with their own batch fence
    /// and the data survives a crash without recovery, like the solo path.
    #[test]
    fn group_commit_dp_persists_data() {
        let s = shared(ConcurrentConfig::default().dp().with_group_commit(true));
        let a = alloc_region(&s, 64);
        let mut h = s.tx_handle(0);
        let before = s.device().stats().sfence_count;
        h.begin();
        h.write_u64(a, 5);
        h.commit();
        assert_eq!(s.device().stats().sfence_count - before, 2);
        let img = s.device().capture(CrashPolicy::AllLost);
        assert_eq!(img.read_u64(a), 5, "DP data survives without recovery");
    }

    /// Concurrent group-mode committers: every receipt's transaction is
    /// durable, batch telemetry is consistent (each commit staged once,
    /// batch occupancies sum to the commit count, fences never exceed
    /// commits), and aborts flow through the group path too.
    #[test]
    fn group_commit_parallel_threads_commit_and_batch() {
        let threads = 8usize;
        let s = shared(ConcurrentConfig::default().with_threads(threads).with_group_commit(true));
        s.telemetry().set_enabled(true);
        let base = alloc_region(&s, threads * 64);
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let s = &s;
                let mut h = s.tx_handle(tid);
                scope.spawn(move || {
                    for v in 0..50u64 {
                        h.begin();
                        h.write_u64(base + tid * 64, v);
                        if v % 10 == 9 {
                            h.abort(); // compensating record fences solo
                        } else {
                            h.commit();
                        }
                    }
                });
            }
        });
        let commits = threads as u64 * 45;
        assert_eq!(s.stats().commits, commits);
        assert_eq!(s.stats().aborts, threads as u64 * 5);
        let reg = &s.telemetry().registry;
        let group_commits = reg.counter(Metric::GroupCommits);
        let batches = reg.counter(Metric::GroupBatches);
        // Commits stage into batches; aborts fence solo (they hold stripes
        // other threads are spinning on and must release immediately).
        assert_eq!(group_commits, commits, "every commit staged exactly once");
        assert!(batches >= 1 && batches <= group_commits);
        let occ = reg.phase(Phase::GroupBatch);
        assert_eq!(occ.count(), batches);
        assert_eq!(occ.sum, group_commits, "batch occupancies sum to the staged commits");
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        for tid in 0..threads {
            // Last surviving value: v=48 committed, v=49 aborted back.
            assert_eq!(img.read_u64(base + tid * 64), 48, "thread {tid}");
        }
    }

    /// The reclamation daemon coexists with group-mode committers (waiters
    /// park holding their area lock; the daemon skips open chains and
    /// never blocks the combiner).
    #[test]
    fn group_commit_with_reclaim_daemon() {
        let s = shared(
            ConcurrentConfig::builder()
                .threads(2)
                .reclaim_threshold_bytes(64 * 1024)
                .group_commit(true)
                .build(),
        );
        let base = alloc_region(&s, 2 * 64);
        let daemon = s.spawn_reclaimer(Duration::from_micros(200));
        std::thread::scope(|scope| {
            for tid in 0..2 {
                let s = &s;
                let mut h = s.tx_handle(tid);
                scope.spawn(move || {
                    for v in 0..3_000u64 {
                        h.begin();
                        h.write_u64(base + tid * 64, v);
                        h.commit();
                    }
                });
            }
        });
        daemon.stop();
        s.reclaim_cycle();
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        for tid in 0..2 {
            assert_eq!(img.read_u64(base + tid * 64), 2_999);
        }
    }

    /// A dedicated group-combiner daemon owns every batch drain:
    /// committers never fence (their telemetry shards record zero fences
    /// and zero WPQ drains — all of that lands on the daemon's shard),
    /// every receipt-holding commit is durable, and the batch occupancy
    /// bookkeeping still sums to the commit count.
    #[test]
    fn group_combiner_daemon_owns_fences_and_commits_are_durable() {
        let threads = 4usize;
        let s = shared(ConcurrentConfig::default().with_threads(threads).with_group_commit(true));
        s.telemetry().set_enabled(true);
        let base = alloc_region(&s, threads * 64);
        let mut combiner = s.spawn_group_combiner(Duration::from_micros(100));
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let s = &s;
                let mut h = s.tx_handle(tid);
                scope.spawn(move || {
                    for v in 0..200u64 {
                        h.begin();
                        h.write_u64(base + tid * 64, v);
                        h.commit();
                    }
                });
            }
        });
        combiner.shutdown();
        let commits = threads as u64 * 200;
        assert_eq!(s.stats().commits, commits);
        let reg = &s.telemetry().registry;
        for tid in 0..threads {
            assert_eq!(reg.counter_in(tid, Metric::Fences), 0, "committer {tid} never fences");
            assert_eq!(reg.counter_in(tid, Metric::WpqDrains), 0, "committer {tid} never drains");
        }
        // Every fence and drain was issued from the daemon's shard.
        let daemon_fences = reg.counter_in(threads, Metric::Fences);
        let batches = reg.counter_in(threads, Metric::GroupBatches);
        assert!(batches >= 1 && batches <= commits);
        assert_eq!(daemon_fences, batches, "one fence per batch");
        let occ = reg.phase_in(threads, Phase::GroupBatch);
        assert_eq!(occ.count(), batches);
        assert_eq!(occ.sum, commits, "batch occupancies sum to the commits");
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        for tid in 0..threads {
            assert_eq!(img.read_u64(base + tid * 64), 199, "thread {tid}");
        }
    }

    /// Stopping the combiner daemon mid-stream is safe: staged commits
    /// fall back to flat combining (self-election) and nothing deadlocks
    /// or loses durability.
    #[test]
    fn group_combiner_daemon_handoff_back_to_flat_combining() {
        let s = shared(ConcurrentConfig::default().with_threads(2).with_group_commit(true));
        let base = alloc_region(&s, 2 * 64);
        let mut combiner = s.spawn_group_combiner(Duration::from_micros(100));
        let mut h = s.tx_handle(0);
        h.begin();
        h.write_u64(base, 1);
        h.commit();
        combiner.shutdown();
        // Daemon gone: commits self-elect again and still retire.
        h.begin();
        h.write_u64(base, 2);
        h.commit();
        let mut img = s.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        assert_eq!(img.read_u64(base), 2);
    }

    /// Crash-point sweep through the group-commit window (satellite:
    /// batched-fence crash atomicity). Multi-op transactions on four
    /// threads with the crash armed at every fuel budget across the run:
    /// the capture lands before the combiner's batch fence, between the
    /// fence and receipt distribution, and while waiters sit staged —
    /// receipt-holders must never lose a transaction, boundary/non-receipt
    /// transactions must be all-or-nothing after recovery.
    #[test]
    fn group_commit_mt_crash_sweep_all_lost() {
        group_crash_sweep(CrashPolicy::AllLost, false);
    }

    #[test]
    fn group_commit_mt_crash_sweep_random_policy() {
        group_crash_sweep(CrashPolicy::Random(0xC0FFEE), false);
    }

    #[test]
    fn group_commit_dp_mt_crash_sweep() {
        group_crash_sweep(CrashPolicy::AllLost, true);
    }

    fn group_crash_sweep(policy: CrashPolicy, dp: bool) {
        use specpmt_pmem::CrashPlan;
        use specpmt_txn::driver::TxOp;
        use specpmt_txn::RunSummary;
        let threads = 4usize;
        let region = 256usize;
        let plans = CrashPlan::sweep_fuel((1..90).step_by(2).map(|n| n as u64), policy);
        let report = specpmt_txn::run_fuel_sweep(
            &plans,
            "cargo test -p specpmt-core group_crash_sweep",
            |plan| {
                let mut cfg =
                    ConcurrentConfig::default().with_threads(threads).with_group_commit(true);
                if dp {
                    cfg = cfg.dp();
                }
                let s = shared(cfg);
                let base = alloc_region(&s, threads * region);
                let bases: Vec<usize> = (0..threads).map(|t| base + t * region).collect();
                let handles: Vec<TxHandle> = (0..threads).map(|t| s.tx_handle(t)).collect();
                let streams: Vec<Vec<Vec<TxOp>>> = (0..threads as u8)
                    .map(|t| {
                        (0..6u8)
                            .map(|i| {
                                vec![
                                    TxOp { addr: 0, data: vec![t * 32 + i + 1; 8] },
                                    TxOp { addr: 64, data: vec![t * 32 + i + 1; 8] },
                                    TxOp { addr: 160, data: vec![0xA0 + i; 4] },
                                ]
                            })
                            .collect()
                    })
                    .collect();
                specpmt_txn::check_mt_crash_atomicity(
                    s.device(),
                    handles,
                    &bases,
                    region,
                    &streams,
                    plan,
                    SpecSpmtShared::recover,
                )
                .map(|out| RunSummary {
                    fired: out.crash_fired,
                    fired_at: out.fired_at,
                    site_hits: out.site_hits,
                })
                .map_err(|e| format!("dp={dp}: {e}"))
            },
        );
        assert!(report.passed(), "failures:\n{}", report.failure_lines().join("\n"));
    }

    #[test]
    #[should_panic(expected = "nested transaction")]
    fn nested_begin_panics() {
        let s = shared(ConcurrentConfig::default());
        let mut h = s.tx_handle(0);
        h.begin();
        h.begin();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tid_panics() {
        let s = shared(ConcurrentConfig::default());
        let _ = s.tx_handle(3);
    }
}
