//! Strict two-phase locking over the concurrent runtime.
//!
//! The paper leaves concurrency control to the application: SpecPMT's
//! model (Section 4.3.3) requires transactions to coincide with outermost
//! critical sections, so *some* locking discipline must already exist
//! around every transaction. [`LockedTxHandle`] supplies that discipline
//! for workloads that do not bring their own: it wraps a
//! [`TxHandle`](crate::TxHandle) and a [`SharedLockTable`], acquiring the
//! stripe lock for every byte the transaction touches *on access* (growing
//! phase) and releasing everything when the commit or abort record seals
//! (shrinking phase — strict, so nothing is exposed before durability).
//!
//! Deadlock is impossible by construction: lock acquisition is a **bounded
//! try-lock** — a handle never blocks while holding stripes. When an
//! acquisition gives up, the transaction is *doomed*: subsequent writes
//! are dropped, reads return zeros, and the driver ([`run_tx`]) aborts and
//! retries the body after randomized exponential backoff. The abort path
//! itself only touches addresses the transaction already wrote, i.e.
//! stripes it already holds, so an abort can always complete.

use std::sync::Arc;
use std::time::Instant;

use specpmt_telemetry::{EventKind, Metric, Phase};
use specpmt_txn::{CommitReceipt, LockGuard, SharedLockTable, TxAccess};

use crate::concurrent::TxHandle;

pub use specpmt_txn::run_tx;

/// How many times an acquisition retries the stripe CAS before dooming
/// the transaction. Between attempts the handle spins briefly with a
/// per-handle random jitter so that symmetric conflicts do not re-collide
/// in lockstep; past [`YIELD_AFTER_ATTEMPT`] the pauses become scheduler
/// yields. The budget is sized so that waiting out a stripe holder parked
/// in a group-commit batch window (hundreds of microseconds) normally
/// succeeds — dooming is the deadlock breaker of last resort, not the
/// common contention outcome. (A single contended stripe cannot deadlock;
/// only multi-stripe cycles need the doom.)
const TRY_LOCK_ATTEMPTS: u32 = 1024;

/// Attempt number past which the inter-attempt pause becomes a scheduler
/// yield instead of a pure spin. Spinning assumes the stripe holder is
/// running on another core; on an oversubscribed host the holder may be
/// descheduled (or parked in a group-commit batch window), and only
/// yielding gives it the core to finish and release. Without this, every
/// contender burns its own quantum spinning, dooms, and retries — a
/// thrash loop in which nobody progresses.
const YIELD_AFTER_ATTEMPT: u32 = 8;

/// Attempt count beyond which a successful contended acquisition marks
/// the transaction for an *urgent* commit ([`TxHandle::commit_urgent`]),
/// slamming the group-commit batch window shut so the stripe is released
/// quickly. Brief collisions below the threshold ride the window
/// normally — slamming on every touch of a popular stripe would cap
/// batch sizes at the conflict rate and forfeit the fence amortization
/// group commit exists for.
const CONTENDED_SLAM_AFTER: u32 = 64;

/// A [`TxHandle`] with strict-2PL concurrency control, safe to race
/// against other `LockedTxHandle`s over the same [`SharedLockTable`].
///
/// Drive it through [`TxAccess`] — typically via [`run_tx`], which
/// supplies the abort-and-retry loop:
///
/// ```
/// use specpmt_core::{ConcurrentConfig, LockedTxHandle, SpecSpmtShared};
/// use specpmt_txn::{run_tx, SharedLockTable, TxAccess};
///
/// let shared = SpecSpmtShared::open_or_format(1usize << 20, ConcurrentConfig::default());
/// let locks = SharedLockTable::new(1 << 20, 64);
/// let mut h = LockedTxHandle::new(shared.tx_handle(0), locks);
/// let a = h.setup_alloc(8, 8);
/// run_tx(&mut h, |tx| tx.write_u64(a, 7));
/// assert_eq!(h.read_u64(a), 7);
/// ```
#[derive(Debug)]
pub struct LockedTxHandle {
    inner: TxHandle,
    locks: Arc<SharedLockTable>,
    guard: Option<LockGuard>,
    doomed: bool,
    /// Set when any acquisition of the current transaction hit the
    /// contended path: at commit the handle seals urgently
    /// ([`TxHandle::commit_urgent`]) so its stripes — which other
    /// threads are spinning on right now — are not parked across a
    /// full group-commit batch window.
    contended: bool,
    /// SplitMix64 state for backoff jitter.
    rng: u64,
    /// Doomed-and-aborted attempts of the current logical transaction
    /// (reset when a commit succeeds); operand of the `abort_retry` trace
    /// event.
    retries: u64,
}

impl LockedTxHandle {
    /// Wraps `inner` with strict 2PL over `locks`. All handles racing on
    /// the same data must share the same table (and the table must span
    /// every address transactions touch).
    pub fn new(inner: TxHandle, locks: Arc<SharedLockTable>) -> Self {
        let rng = 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(inner.tid() as u64 + 1);
        Self { inner, locks, guard: None, doomed: false, contended: false, rng, retries: 0 }
    }

    /// The wrapped handle.
    pub fn inner(&self) -> &TxHandle {
        &self.inner
    }

    /// Unwraps the handle, discarding the lock table.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is open.
    pub fn into_inner(self) -> TxHandle {
        assert!(!self.inner.in_tx(), "into_inner with an open transaction");
        self.inner
    }

    /// The shared lock table.
    pub fn locks(&self) -> &Arc<SharedLockTable> {
        &self.locks
    }

    /// This handle's thread slot.
    pub fn tid(&self) -> usize {
        self.inner.tid()
    }

    /// Builds a fleet of `n` handles (thread slots `0..n`) over one shared
    /// runtime and one lock table — the standard setup for racing real OS
    /// threads over a shared pool.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the runtime's configured thread count.
    pub fn fleet(
        shared: &Arc<crate::SpecSpmtShared>,
        locks: &Arc<SharedLockTable>,
        n: usize,
    ) -> Vec<LockedTxHandle> {
        (0..n).map(|tid| LockedTxHandle::new(shared.tx_handle(tid), locks.clone())).collect()
    }

    fn next_jitter(&mut self) -> u32 {
        // SplitMix64 step.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as u32 & 0x3F
    }

    /// Bounded-try-lock acquisition of `[addr, addr + len)`. Returns
    /// `false` (and dooms the transaction) when the budget is exhausted.
    fn acquire(&mut self, addr: usize, len: usize) -> bool {
        if self.doomed {
            return false;
        }
        let tid = self.inner.tid();
        // Fast path: the first try-lock succeeds with no clock read, so
        // the uncontended acquisition costs nothing beyond the CAS.
        {
            let guard = self.guard.as_mut().expect("lock guard outside transaction");
            if guard.try_extend(addr, len) {
                self.inner.shared().telemetry().tracer.record(
                    tid,
                    EventKind::LockAcquire,
                    addr as u64,
                    0,
                );
                return true;
            }
        }
        // Contended path: time the bounded spin so the wait lands in both
        // the table-wide wait histogram and the per-thread `lock_wait`
        // phase.
        let t0 = Instant::now();
        for attempt in 1..TRY_LOCK_ATTEMPTS {
            if attempt > YIELD_AFTER_ATTEMPT {
                std::thread::yield_now();
            } else {
                let spins = attempt + self.next_jitter();
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
            }
            let guard = self.guard.as_mut().expect("lock guard outside transaction");
            if guard.try_extend(addr, len) {
                if attempt > CONTENDED_SLAM_AFTER {
                    // A long wait means real starvation pressure on this
                    // stripe — commit urgently so it is released after one
                    // batch drain, not a full batch window.
                    self.contended = true;
                }
                let wait_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.locks.record_wait_ns(wait_ns);
                let tel = self.inner.shared().telemetry();
                tel.registry.record(tid, Phase::LockWait, wait_ns);
                tel.tracer.record(tid, EventKind::LockAcquire, addr as u64, wait_ns);
                return true;
            }
        }
        let wait_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.locks.record_wait_ns(wait_ns);
        let tel = self.inner.shared().telemetry();
        tel.registry.record(tid, Phase::LockWait, wait_ns);
        tel.registry.add(tid, Metric::Dooms, 1);
        tel.tracer.record(tid, EventKind::Doom, tid as u64, 0);
        self.doomed = true;
        false
    }

    /// Commits and returns the [`CommitReceipt`] (see [`TxHandle::commit`]),
    /// releasing every stripe after the record seals.
    ///
    /// # Panics
    ///
    /// Panics outside a transaction or if the transaction is doomed
    /// (doomed transactions must [`abort`](Self::abort)).
    pub fn commit(&mut self) -> CommitReceipt {
        assert!(!self.doomed, "commit of a doomed transaction (abort it instead)");
        // A contended transaction holds stripes other threads are spinning
        // on: it still rides the shared batch fence but slams the window
        // shut, keeping 2PL hold times short instead of stretching them
        // across a full batch window.
        let receipt = if self.contended { self.inner.commit_urgent() } else { self.inner.commit() };
        // Strict 2PL: locks release only after the commit record is
        // durable, so no other thread ever reads speculative state.
        self.guard = None;
        self.retries = 0;
        receipt
    }
}

impl TxAccess for LockedTxHandle {
    fn begin(&mut self) {
        self.inner.begin();
        self.guard = Some(self.locks.guard(self.inner.tid()));
        self.doomed = false;
        self.contended = false;
    }

    fn write(&mut self, addr: usize, data: &[u8]) {
        if self.acquire(addr, data.len()) {
            self.inner.write(addr, data);
        }
        // Doomed: drop the write. The driver will abort and retry.
    }

    fn read(&mut self, addr: usize, buf: &mut [u8]) {
        if !self.inner.in_tx() {
            // Outside transactions (setup / verification) reads are
            // unsynchronized direct access, as on the raw handle.
            self.inner.read(addr, buf);
            return;
        }
        // The table has no shared mode: reads take the stripe exclusively
        // (conservative 2PL), which is what makes racing writers testable.
        if self.acquire(addr, buf.len()) {
            self.inner.read(addr, buf);
        } else {
            buf.fill(0);
        }
    }

    fn commit(&mut self) {
        let _ = LockedTxHandle::commit(self);
    }

    fn abort(&mut self) {
        let was_doomed = self.doomed;
        if self.inner.in_tx() {
            // The undo set only names addresses this transaction wrote —
            // stripes it already holds — so the restore always proceeds.
            self.inner.abort();
        }
        self.guard = None;
        self.doomed = false;
        if was_doomed {
            // A doomed abort is followed by a driver retry (`run_tx`).
            self.retries += 1;
            let tel = self.inner.shared().telemetry();
            tel.registry.add(self.inner.tid(), Metric::Retries, 1);
            tel.tracer.record(self.inner.tid(), EventKind::AbortRetry, self.retries, 0);
        }
    }

    fn alloc(&mut self, size: usize, align: usize) -> usize {
        use specpmt_pmem::BUMP_OFF;
        // The bump pointer is shared mutable state: its log entry must be
        // covered by the same 2PL regime as every other address, otherwise
        // a stale bump could win recovery and overlap live objects.
        if self.acquire(BUMP_OFF, 8) {
            return self.inner.alloc(size, align);
        }
        // Doomed: reserve real (wasted) space so the body can keep using
        // the address harmlessly until the driver aborts; nothing is
        // logged, and the retry performs the durable allocation.
        let r = self.inner.shared().pool().reserve(size, align).expect("pool heap exhausted");
        r.off
    }

    fn free(&mut self, addr: usize, size: usize, align: usize) {
        TxAccess::free(&mut self.inner, addr, size, align);
    }

    fn in_tx(&self) -> bool {
        self.inner.in_tx()
    }

    fn doomed(&self) -> bool {
        self.doomed
    }

    fn compute(&mut self, ns: u64) {
        self.inner.compute(ns);
    }

    fn local_now_ns(&self) -> u64 {
        TxAccess::local_now_ns(&self.inner)
    }

    fn set_timing(&mut self, mode: specpmt_pmem::TimingMode) -> specpmt_pmem::TimingMode {
        self.inner.set_timing(mode)
    }

    fn setup_alloc(&mut self, bytes: usize, align: usize) -> usize {
        self.inner.setup_alloc(bytes, align)
    }

    fn setup_write(&mut self, addr: usize, data: &[u8]) {
        self.inner.setup_write(addr, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcurrentConfig, SpecSpmtShared};
    use specpmt_pmem::CrashControl;
    use specpmt_pmem::{CrashPolicy, PmemConfig, SharedPmemDevice, SharedPmemPool};

    fn fixture(threads: usize) -> (Arc<SpecSpmtShared>, Arc<SharedLockTable>) {
        let dev = SharedPmemDevice::new(PmemConfig::new(1 << 22));
        let shared = SpecSpmtShared::new(
            SharedPmemPool::create(dev),
            ConcurrentConfig::default().with_threads(threads),
        );
        let locks = SharedLockTable::new(1 << 22, 64);
        (shared, locks)
    }

    #[test]
    fn locked_commit_releases_all_stripes() {
        let (shared, locks) = fixture(1);
        let mut h = LockedTxHandle::new(shared.tx_handle(0), locks.clone());
        let a = h.setup_alloc(256, 64);
        run_tx(&mut h, |tx| {
            for i in 0..4 {
                tx.write_u64(a + i * 64, i as u64);
            }
        });
        assert_eq!(locks.held_stripes(), 0);
        assert_eq!(h.read_u64(a + 192), 3);
    }

    #[test]
    fn conflicting_handle_is_doomed_then_recovers_by_retry() {
        let (shared, locks) = fixture(2);
        let mut h0 = LockedTxHandle::new(shared.tx_handle(0), locks.clone());
        let mut h1 = LockedTxHandle::new(shared.tx_handle(1), locks.clone());
        let a = h0.setup_alloc(64, 64);
        h0.begin();
        h0.write_u64(a, 1);
        // h1 cannot take the stripe while h0 holds it.
        h1.begin();
        h1.write_u64(a, 2);
        assert!(h1.doomed(), "conflicting write must doom the transaction");
        TxAccess::abort(&mut h1);
        LockedTxHandle::commit(&mut h0);
        // After h0 released, a retry of h1 succeeds.
        run_tx(&mut h1, |tx| tx.write_u64(a, 2));
        assert_eq!(h0.read_u64(a), 2);
        assert_eq!(locks.held_stripes(), 0);
        assert_eq!(shared.stats().aborts, 1);
    }

    #[test]
    fn doomed_reads_return_zero_and_writes_are_dropped() {
        let (shared, locks) = fixture(2);
        let mut h0 = LockedTxHandle::new(shared.tx_handle(0), locks.clone());
        let mut h1 = LockedTxHandle::new(shared.tx_handle(1), locks);
        let a = h0.setup_alloc(64, 64);
        h0.setup_write(a, &7u64.to_le_bytes());
        h0.begin();
        h0.write_u64(a, 8);
        h1.begin();
        assert_eq!(h1.read_u64(a), 0, "doomed read sees zeros, never speculative state");
        assert!(h1.doomed());
        h1.write_u64(a + 8, 9); // dropped
        TxAccess::abort(&mut h1);
        LockedTxHandle::commit(&mut h0);
        assert_eq!(h0.read_u64(a + 8), 0, "doomed write must not reach the pool");
    }

    #[test]
    fn abort_restores_pre_images_across_crash() {
        let (shared, locks) = fixture(1);
        let mut h = LockedTxHandle::new(shared.tx_handle(0), locks);
        let a = h.setup_alloc(64, 64);
        run_tx(&mut h, |tx| tx.write_u64(a, 5));
        h.begin();
        h.write_u64(a, 99);
        TxAccess::abort(&mut h);
        let mut img = shared.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        assert_eq!(img.read_u64(a), 5, "compensating record restores the committed value");
    }

    #[test]
    fn transactional_alloc_serializes_on_bump_stripe() {
        let (shared, locks) = fixture(2);
        let mut h0 = LockedTxHandle::new(shared.tx_handle(0), locks.clone());
        let mut h1 = LockedTxHandle::new(shared.tx_handle(1), locks);
        let root = h0.setup_alloc(64, 64);
        h0.begin();
        let obj = h0.alloc(32, 8);
        h0.write_u64(root, obj as u64);
        // h1's alloc conflicts on the bump stripe -> doomed, space wasted
        // but no log entry.
        h1.begin();
        let _scratch = h1.alloc(32, 8);
        assert!(h1.doomed());
        TxAccess::abort(&mut h1);
        LockedTxHandle::commit(&mut h0);
        let mut img = shared.device().capture(CrashPolicy::AllLost);
        SpecSpmtShared::recover(&mut img);
        assert_eq!(img.read_u64(root) as usize, obj);
    }
}
