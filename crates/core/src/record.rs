//! On-PM log organization: chained log blocks, record encoding, parsing.
//!
//! Per the paper's Section 4.1, each thread's log area is a chronological
//! sequence of *records* stored in chained fixed-size *log blocks*:
//!
//! ```text
//! block:  [fwd ptr: u64][bwd ptr: u64][record bytes …]
//! record: [len: u32][ts: u64][checksum: u64][entries …]       (len = entry bytes)
//! entry:  [addr: u64][len: u32][value bytes]
//! ```
//!
//! Records flow byte-contiguously across blocks (a record larger than the
//! space left in a block simply continues in the next one). A record with
//! `len == 0`, an unreadable record, or a checksum mismatch terminates the
//! chain: the checksum doubles as the commit flag, so a transaction whose
//! commit was interrupted leaves a torn record that parsing rejects.

use specpmt_pmem::{CrashImage, DeviceHandle, PmemDevice, PmemPool, SharedPmemPool};

use crate::checksum::Fnv1a;

/// Bytes reserved at the start of each log block (forward + backward
/// pointers).
pub const BLOCK_HDR: usize = 16;

/// Record header size: `len (u32) | ts (u64) | checksum (u64)`.
pub const REC_HDR: usize = 20;

/// Entry header size: `addr (u64) | len (u32)`.
pub const ENTRY_HDR: usize = 12;

/// Upper bound on a single record's payload; larger lengths are treated as
/// corruption during parsing.
pub const MAX_RECORD_PAYLOAD: usize = 1 << 24;

/// Something log bytes can be read from: a live device or a crash image.
pub trait ByteSource {
    /// Reads `buf.len()` bytes at `addr`; returns `false` (leaving `buf`
    /// unspecified) if out of bounds.
    fn read_at(&self, addr: usize, buf: &mut [u8]) -> bool;
    /// Source size in bytes.
    fn source_len(&self) -> usize;
}

impl ByteSource for CrashImage {
    fn read_at(&self, addr: usize, buf: &mut [u8]) -> bool {
        let bytes = self.as_bytes();
        if addr + buf.len() > bytes.len() {
            return false;
        }
        buf.copy_from_slice(&bytes[addr..addr + buf.len()]);
        true
    }

    fn source_len(&self) -> usize {
        self.len()
    }
}

impl ByteSource for PmemDevice {
    fn read_at(&self, addr: usize, buf: &mut [u8]) -> bool {
        if addr + buf.len() > self.size() {
            return false;
        }
        // `peek` returns a borrowed slice of the device image: a single
        // copy into the caller's buffer, no intermediate allocation.
        buf.copy_from_slice(self.peek(addr, buf.len()));
        true
    }

    fn source_len(&self) -> usize {
        self.size()
    }
}

impl ByteSource for DeviceHandle {
    fn read_at(&self, addr: usize, buf: &mut [u8]) -> bool {
        if addr + buf.len() > self.size() {
            return false;
        }
        // `peek_into` copies straight from the (sharded) device image into
        // the caller's buffer — the earlier `peek(..) -> Vec` round-trip
        // allocated and copied every parsed header/payload twice.
        self.peek_into(addr, buf);
        true
    }

    fn source_len(&self) -> usize {
        self.size()
    }
}

/// A position in a log-block chain: block base offset + offset within the
/// block (always ≥ [`BLOCK_HDR`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// Pool offset of the block.
    pub block: usize,
    /// Byte position within the block.
    pub pos: usize,
}

/// One durable update captured in a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Pool offset the value belongs at.
    pub addr: usize,
    /// The (new, speculative) value.
    pub value: Vec<u8>,
}

/// A parsed, checksum-valid (i.e. committed) log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Commit timestamp (global order across threads).
    pub ts: u64,
    /// Entries in append order (later entries supersede earlier ones).
    pub entries: Vec<LogEntry>,
}

impl LogRecord {
    /// Total payload bytes this record's entries encode to.
    pub fn payload_len(&self) -> usize {
        self.entries.iter().map(|e| ENTRY_HDR + e.value.len()).sum()
    }
}

/// Computes the record checksum over `payload || len || ts`.
///
/// The variable-length payload comes *first* so the commit path can fold
/// entry bytes into a streaming [`Fnv1a`] as they are staged and only
/// append the fixed 12-byte `len || ts` suffix at seal time: FNV-1a is
/// strictly sequential, so whatever is hashed first must be known first —
/// and at staging time the payload bytes are known while the final length
/// and commit timestamp are not. Runs without any temporary buffer.
pub fn record_checksum(ts: u64, payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(payload);
    record_checksum_finish(h, payload.len(), ts)
}

/// Finalizes a streaming payload hash into the record checksum by folding
/// in the `len || ts` suffix. `payload_hash` must have been fed exactly
/// the record's payload bytes in order.
pub fn record_checksum_finish(mut payload_hash: Fnv1a, payload_len: usize, ts: u64) -> u64 {
    payload_hash.update(&(payload_len as u32).to_le_bytes());
    payload_hash.update(&ts.to_le_bytes());
    payload_hash.finish()
}

/// Encodes a record header from precomputed parts — the seal fast path,
/// where the checksum was accumulated incrementally during staging.
pub fn encode_header_parts(ts: u64, payload_len: usize, checksum: u64) -> [u8; REC_HDR] {
    let mut h = [0u8; REC_HDR];
    h[0..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    h[4..12].copy_from_slice(&ts.to_le_bytes());
    h[12..20].copy_from_slice(&checksum.to_le_bytes());
    h
}

/// Encodes a record header for the given payload.
pub fn encode_header(ts: u64, payload: &[u8]) -> [u8; REC_HDR] {
    encode_header_parts(ts, payload.len(), record_checksum(ts, payload))
}

/// Appends one entry to a payload buffer.
pub fn push_entry(payload: &mut Vec<u8>, addr: usize, value: &[u8]) {
    payload.extend_from_slice(&(addr as u64).to_le_bytes());
    payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
    payload.extend_from_slice(value);
}

/// Encodes the fixed-size entry header `[addr u64 | len u32]` on the
/// stack — the allocation-free form of [`push_entry`] used by the
/// reusable write set.
pub fn entry_header(addr: usize, value_len: usize) -> [u8; ENTRY_HDR] {
    let mut hdr = [0u8; ENTRY_HDR];
    hdr[..8].copy_from_slice(&(addr as u64).to_le_bytes());
    hdr[8..].copy_from_slice(&(value_len as u32).to_le_bytes());
    hdr
}

/// Encodes a full record (header + payload) — used by compaction.
pub fn encode_record(rec: &LogRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(rec.payload_len());
    for e in &rec.entries {
        push_entry(&mut payload, e.addr, &e.value);
    }
    let mut out = Vec::with_capacity(REC_HDR + payload.len());
    out.extend_from_slice(&encode_header(rec.ts, &payload));
    out.extend_from_slice(&payload);
    out
}

fn parse_entries(payload: &[u8]) -> Vec<LogEntry> {
    let mut entries = Vec::new();
    let mut off = 0;
    while off + ENTRY_HDR <= payload.len() {
        let mut a = [0u8; 8];
        a.copy_from_slice(&payload[off..off + 8]);
        let addr = u64::from_le_bytes(a) as usize;
        let mut l = [0u8; 4];
        l.copy_from_slice(&payload[off + 8..off + 12]);
        let len = u32::from_le_bytes(l) as usize;
        if off + ENTRY_HDR + len > payload.len() {
            break;
        }
        entries.push(LogEntry {
            addr,
            value: payload[off + ENTRY_HDR..off + ENTRY_HDR + len].to_vec(),
        });
        off += ENTRY_HDR + len;
    }
    entries
}

/// Streaming reader over a block chain.
struct StreamReader<'a, S: ByteSource> {
    src: &'a S,
    cur: Cursor,
    block_bytes: usize,
    /// Cycle guard: maximum block hops remaining.
    hops_left: usize,
}

impl<'a, S: ByteSource> StreamReader<'a, S> {
    fn new(src: &'a S, head: usize, block_bytes: usize) -> Self {
        let max_blocks = src.source_len() / block_bytes + 2;
        Self {
            src,
            cur: Cursor { block: head, pos: BLOCK_HDR },
            block_bytes,
            hops_left: max_blocks,
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> bool {
        let mut off = 0;
        while off < buf.len() {
            if self.cur.pos >= self.block_bytes {
                // Follow the forward pointer.
                let mut p = [0u8; 8];
                if !self.src.read_at(self.cur.block, &mut p) {
                    return false;
                }
                let next = u64::from_le_bytes(p) as usize;
                if next == 0 || next + self.block_bytes > self.src.source_len() {
                    return false;
                }
                if self.hops_left == 0 {
                    return false;
                }
                self.hops_left -= 1;
                self.cur = Cursor { block: next, pos: BLOCK_HDR };
            }
            let n = (self.block_bytes - self.cur.pos).min(buf.len() - off);
            if !self.src.read_at(self.cur.block + self.cur.pos, &mut buf[off..off + n]) {
                return false;
            }
            self.cur.pos += n;
            off += n;
        }
        true
    }
}

/// Parses all committed records of the chain starting at `head`.
///
/// Parsing stops at the first `len == 0` header (open/terminated log), an
/// unreadable position, or a checksum mismatch (torn commit) — per the
/// paper, no fresh records can follow a corrupt one.
pub fn parse_chain<S: ByteSource>(src: &S, head: usize, block_bytes: usize) -> Vec<LogRecord> {
    let mut out = Vec::new();
    if head == 0 || head + block_bytes > src.source_len() || block_bytes <= BLOCK_HDR {
        return out;
    }
    let mut reader = StreamReader::new(src, head, block_bytes);
    // One payload buffer reused across records: parsing a long chain does
    // not allocate per record (reclamation parses every chain every cycle).
    let mut payload = Vec::new();
    loop {
        let mut hdr = [0u8; REC_HDR];
        if !reader.read(&mut hdr) {
            break;
        }
        let len = u32::from_le_bytes(hdr[0..4].try_into().expect("4 bytes")) as usize;
        if len == 0 || len > MAX_RECORD_PAYLOAD {
            break;
        }
        let ts = u64::from_le_bytes(hdr[4..12].try_into().expect("8 bytes"));
        let cksum = u64::from_le_bytes(hdr[12..20].try_into().expect("8 bytes"));
        payload.clear();
        payload.resize(len, 0);
        if !reader.read(&mut payload) {
            break;
        }
        if record_checksum(ts, &payload) != cksum {
            break;
        }
        out.push(LogRecord { ts, entries: parse_entries(&payload) });
    }
    out
}

/// Magic opening a checkpoint record ("SPCKPT00").
pub const CKPT_MAGIC: u64 = 0x5350_434b_5054_3030;

/// Checkpoint record header size:
/// `magic (u64) | watermark (u64) | len (u32) | checksum (u64)`.
pub const CKPT_HDR: usize = 28;

/// Upper bound on a checkpoint's payload (a checkpoint snapshots live
/// data, which can legitimately dwarf any single transaction record).
pub const MAX_CKPT_PAYLOAD: usize = 1 << 28;

/// A parsed, checksum-valid checkpoint record (see
/// [`crate::recovery`]): the last-writer-wins resolution of every
/// committed entry with commit timestamp `<= watermark`, stored as
/// disjoint, address-sorted runs.
///
/// Replaying the checkpoint's entries and then every committed record
/// with `ts > watermark` recovers the same image as replaying the full
/// log — which is what bounds replay cost by data since the checkpoint
/// instead of total log size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRecord {
    /// Every committed record with `ts <= watermark` is folded into this
    /// checkpoint; records above it must still be replayed.
    pub watermark: u64,
    /// Snapshot runs: disjoint address ranges, sorted ascending by `addr`.
    pub entries: Vec<LogEntry>,
}

impl CheckpointRecord {
    /// Total payload bytes the entries encode to.
    pub fn payload_len(&self) -> usize {
        self.entries.iter().map(|e| ENTRY_HDR + e.value.len()).sum()
    }
}

/// Encodes a full checkpoint record (header + entry payload). The
/// checksum covers `payload || len || watermark` via [`record_checksum`]
/// (the watermark rides in the timestamp seat), so a torn checkpoint is
/// rejected exactly like a torn transaction record.
pub fn encode_checkpoint(ckpt: &CheckpointRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(ckpt.payload_len());
    for e in &ckpt.entries {
        push_entry(&mut payload, e.addr, &e.value);
    }
    let mut out = Vec::with_capacity(CKPT_HDR + payload.len());
    out.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    out.extend_from_slice(&ckpt.watermark.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_checksum(ckpt.watermark, &payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses the checkpoint record stored in the block chain at `head`.
///
/// Returns `None` for an empty head, a bad magic, an implausible length,
/// an unreadable chain, or a checksum mismatch — the torn-checkpoint
/// cases, where recovery must fall back to a full log replay.
pub fn parse_checkpoint<S: ByteSource>(
    src: &S,
    head: usize,
    block_bytes: usize,
) -> Option<CheckpointRecord> {
    if head == 0 || head + block_bytes > src.source_len() || block_bytes <= BLOCK_HDR {
        return None;
    }
    let mut reader = StreamReader::new(src, head, block_bytes);
    let mut hdr = [0u8; CKPT_HDR];
    if !reader.read(&mut hdr) {
        return None;
    }
    if u64::from_le_bytes(hdr[0..8].try_into().expect("8 bytes")) != CKPT_MAGIC {
        return None;
    }
    let watermark = u64::from_le_bytes(hdr[8..16].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(hdr[16..20].try_into().expect("4 bytes")) as usize;
    if len > MAX_CKPT_PAYLOAD {
        return None;
    }
    let cksum = u64::from_le_bytes(hdr[20..28].try_into().expect("8 bytes"));
    let mut payload = vec![0u8; len];
    if !reader.read(&mut payload) {
        return None;
    }
    if record_checksum(watermark, &payload) != cksum {
        return None;
    }
    Some(CheckpointRecord { watermark, entries: parse_entries(&payload) })
}

/// The mutable storage a [`LogArea`] writes through — abstracts over the
/// single-threaded [`PmemPool`] and a per-thread [`DeviceHandle`] of a
/// [`SharedPmemPool`], so the log-chain code is written once and shared by
/// the sequential and the concurrent runtimes.
pub trait LogStore {
    /// Stores `data` at `addr` in the volatile image.
    fn store(&mut self, addr: usize, data: &[u8]);
    /// Reads a `u64` at `addr` without charging cost (pointer chasing).
    fn load_u64(&self, addr: usize) -> u64;
    /// Allocates one log block of `block_bytes` (reusing freed blocks where
    /// available).
    ///
    /// # Panics
    ///
    /// Implementations panic if the pool heap is exhausted.
    fn take_block(&mut self, block_bytes: usize) -> usize;
}

/// Batch size for log-block allocation (amortizes the bump-pointer persist
/// over many blocks).
const BLOCK_BATCH: usize = 16;

/// [`LogStore`] over the single-threaded pool plus its volatile free list.
#[derive(Debug)]
pub struct PoolStore<'a> {
    /// The pool log blocks live in.
    pub pool: &'a mut PmemPool,
    /// Volatile free-block list.
    pub free: &'a mut Vec<usize>,
}

impl<'a> PoolStore<'a> {
    /// Wraps a pool and its free list.
    pub fn new(pool: &'a mut PmemPool, free: &'a mut Vec<usize>) -> Self {
        Self { pool, free }
    }
}

impl LogStore for PoolStore<'_> {
    fn store(&mut self, addr: usize, data: &[u8]) {
        self.pool.device_mut().write(addr, data);
    }

    fn load_u64(&self, addr: usize) -> u64 {
        self.pool.device().peek_u64(addr)
    }

    fn take_block(&mut self, block_bytes: usize) -> usize {
        take_block(self.pool, self.free, block_bytes)
    }
}

/// [`LogStore`] over one thread's [`DeviceHandle`] of a shared pool.
///
/// The caller supplies the free list (typically a guard over the shared
/// runtime's free-block mutex — the handle itself never takes locks beyond
/// the device's internal sharding).
#[derive(Debug)]
pub struct SharedStore<'a> {
    /// The issuing thread's device handle.
    pub handle: &'a DeviceHandle,
    /// The shared pool blocks are allocated from.
    pub pool: &'a SharedPmemPool,
    /// Free-block list (shared across threads; caller holds its lock).
    pub free: &'a mut Vec<usize>,
}

impl LogStore for SharedStore<'_> {
    fn store(&mut self, addr: usize, data: &[u8]) {
        self.handle.write(addr, data);
    }

    fn load_u64(&self, addr: usize) -> u64 {
        self.handle.peek_u64(addr)
    }

    fn take_block(&mut self, block_bytes: usize) -> usize {
        if let Some(b) = self.free.pop() {
            return b;
        }
        let base = self
            .pool
            .alloc_direct(block_bytes * BLOCK_BATCH, 64)
            .expect("pool exhausted while allocating log blocks");
        for i in (1..BLOCK_BATCH).rev() {
            self.free.push(base + i * block_bytes);
        }
        base
    }
}

/// Writer over a (growable) block chain on a live pool.
///
/// Appends records byte-contiguously, allocating and linking new blocks on
/// demand; records the dirty ranges the caller must flush at commit.
#[derive(Debug)]
pub struct LogArea {
    head: usize,
    tail: Cursor,
    block_bytes: usize,
    blocks: Vec<usize>,
    /// Mutation generation: bumped on every append / in-place patch. The
    /// pair `(head, generation)` is the chain's change watermark —
    /// reclamation caches parsed records per chain and skips re-parsing
    /// (and, when nothing was dropped last time, rewriting) chains whose
    /// watermark has not moved.
    generation: u64,
}

/// Allocates one log block, reusing `free` or batch-allocating from the
/// pool (the batch amortizes the bump-pointer persist over many blocks).
///
/// # Panics
///
/// Panics if the pool heap is exhausted.
pub fn take_block(pool: &mut PmemPool, free: &mut Vec<usize>, block_bytes: usize) -> usize {
    if let Some(b) = free.pop() {
        return b;
    }
    let base = pool
        .alloc_direct(block_bytes * BLOCK_BATCH, 64)
        .expect("pool exhausted while allocating log blocks");
    for i in (1..BLOCK_BATCH).rev() {
        free.push(base + i * block_bytes);
    }
    base
}

impl LogArea {
    /// Creates a chain with one block taken from the store. The block
    /// header and the stream terminator are initialized (volatile; the
    /// first commit persists them).
    pub fn create<S: LogStore>(
        store: &mut S,
        block_bytes: usize,
        dirty: &mut Vec<(usize, usize)>,
    ) -> Self {
        assert!(block_bytes > BLOCK_HDR + REC_HDR, "block size too small");
        let b = store.take_block(block_bytes);
        store.store(b, &0u64.to_le_bytes());
        store.store(b + 8, &0u64.to_le_bytes());
        // Zero terminator so parsing stops immediately.
        store.store(b + BLOCK_HDR, &[0u8; 4]);
        dirty.push((b, BLOCK_HDR + 4));
        Self {
            head: b,
            tail: Cursor { block: b, pos: BLOCK_HDR },
            block_bytes,
            blocks: vec![b],
            generation: 0,
        }
    }

    /// First block of the chain.
    pub fn head(&self) -> usize {
        self.head
    }

    /// Mutation generation (see the field docs): `(head(), generation())`
    /// is the chain's change watermark.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current append position.
    pub fn tail(&self) -> Cursor {
        self.tail
    }

    /// Number of blocks in the chain.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total PM bytes occupied by the chain.
    pub fn footprint(&self) -> usize {
        self.blocks.len() * self.block_bytes
    }

    /// Consumes the area, returning its blocks (for the free list).
    pub fn into_blocks(self) -> Vec<usize> {
        self.blocks
    }

    /// Appends `bytes` at the tail, spilling into new blocks as needed.
    /// Dirty ranges (including touched block pointers) are pushed to
    /// `dirty`.
    pub fn append<S: LogStore>(
        &mut self,
        store: &mut S,
        bytes: &[u8],
        dirty: &mut Vec<(usize, usize)>,
    ) {
        self.generation += 1;
        let mut off = 0;
        while off < bytes.len() {
            if self.tail.pos >= self.block_bytes {
                self.spill(store, dirty);
            }
            let n = (self.block_bytes - self.tail.pos).min(bytes.len() - off);
            let addr = self.tail.block + self.tail.pos;
            store.store(addr, &bytes[off..off + n]);
            dirty.push((addr, n));
            self.tail.pos += n;
            off += n;
        }
    }

    fn spill<S: LogStore>(&mut self, store: &mut S, dirty: &mut Vec<(usize, usize)>) {
        let prev = self.tail.block;
        let nb = store.take_block(self.block_bytes);
        store.store(nb, &0u64.to_le_bytes());
        store.store(nb + 8, &(prev as u64).to_le_bytes());
        store.store(nb + BLOCK_HDR, &[0u8; 4]);
        store.store(prev, &(nb as u64).to_le_bytes());
        dirty.push((nb, BLOCK_HDR + 4));
        dirty.push((prev, 8));
        self.blocks.push(nb);
        self.tail = Cursor { block: nb, pos: BLOCK_HDR };
    }

    /// Writes `bytes` at `cursor` (an earlier position in this chain),
    /// following existing forward pointers. Returns the number of bytes
    /// written (less than `bytes.len()` only if the chain ends — callers
    /// patching record headers must never hit that).
    pub fn write_at<S: LogStore>(
        &mut self,
        store: &mut S,
        mut cursor: Cursor,
        bytes: &[u8],
        dirty: &mut Vec<(usize, usize)>,
    ) -> usize {
        self.generation += 1;
        let mut off = 0;
        while off < bytes.len() {
            if cursor.pos >= self.block_bytes {
                let next = store.load_u64(cursor.block) as usize;
                if next == 0 {
                    break;
                }
                cursor = Cursor { block: next, pos: BLOCK_HDR };
            }
            let n = (self.block_bytes - cursor.pos).min(bytes.len() - off);
            let addr = cursor.block + cursor.pos;
            store.store(addr, &bytes[off..off + n]);
            dirty.push((addr, n));
            cursor.pos += n;
            off += n;
        }
        off
    }

    /// Writes the 4-byte zero terminator at the tail **without** advancing
    /// it (the next record's header overwrites it in place). Bytes that
    /// would fall past the last block are dropped — parsing stops at the
    /// chain end anyway.
    pub fn write_terminator<S: LogStore>(
        &mut self,
        store: &mut S,
        dirty: &mut Vec<(usize, usize)>,
    ) {
        self.write_at(store, self.tail, &[0u8; 4], dirty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::{PmemConfig, PmemDevice};

    const BB: usize = 128;

    fn pool() -> PmemPool {
        PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 20).untimed()))
    }

    fn append_record(
        area: &mut LogArea,
        pool: &mut PmemPool,
        free: &mut Vec<usize>,
        rec: &LogRecord,
    ) {
        let mut dirty = Vec::new();
        let mut store = PoolStore::new(pool, free);
        area.append(&mut store, &encode_record(rec), &mut dirty);
        area.write_terminator(&mut store, &mut dirty);
    }

    fn rec(ts: u64, addr: usize, value: &[u8]) -> LogRecord {
        LogRecord { ts, entries: vec![LogEntry { addr, value: value.to_vec() }] }
    }

    #[test]
    fn roundtrip_single_record() {
        let mut pool = pool();
        let mut free = Vec::new();
        let mut dirty = Vec::new();
        let mut area = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        let r = rec(5, 0x40, &[1, 2, 3]);
        append_record(&mut area, &mut pool, &mut free, &r);
        let parsed = parse_chain(pool.device(), area.head(), BB);
        assert_eq!(parsed, vec![r]);
    }

    #[test]
    fn roundtrip_multiple_records_preserve_order() {
        let mut pool = pool();
        let mut free = Vec::new();
        let mut dirty = Vec::new();
        let mut area = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        let recs: Vec<_> = (1..=5).map(|i| rec(i, 64 * i as usize, &[i as u8; 7])).collect();
        for r in &recs {
            append_record(&mut area, &mut pool, &mut free, r);
        }
        let parsed = parse_chain(pool.device(), area.head(), BB);
        assert_eq!(parsed, recs);
    }

    #[test]
    fn record_spills_across_blocks() {
        let mut pool = pool();
        let mut free = Vec::new();
        let mut dirty = Vec::new();
        let mut area = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        // Payload much larger than a block.
        let big = rec(1, 0x100, &vec![0xAB; 3 * BB]);
        append_record(&mut area, &mut pool, &mut free, &big);
        assert!(area.block_count() >= 3);
        let parsed = parse_chain(pool.device(), area.head(), BB);
        assert_eq!(parsed, vec![big]);
    }

    #[test]
    fn empty_chain_parses_empty() {
        let mut pool = pool();
        let mut free = Vec::new();
        let mut dirty = Vec::new();
        let area = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        assert!(parse_chain(pool.device(), area.head(), BB).is_empty());
    }

    #[test]
    fn corrupt_checksum_stops_parse() {
        let mut pool = pool();
        let mut free = Vec::new();
        let mut dirty = Vec::new();
        let mut area = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        let r1 = rec(1, 0x40, &[1; 4]);
        let r2 = rec(2, 0x48, &[2; 4]);
        append_record(&mut area, &mut pool, &mut free, &r1);
        let after_r1 = area.tail();
        append_record(&mut area, &mut pool, &mut free, &r2);
        // Corrupt one payload byte of r2 (header is REC_HDR after cursor).
        let addr = after_r1.block + after_r1.pos + REC_HDR + 2;
        pool.device_mut().write(addr, &[0xFF]);
        let parsed = parse_chain(pool.device(), area.head(), BB);
        assert_eq!(parsed, vec![r1]);
    }

    #[test]
    fn zero_head_or_oversized_head_is_empty() {
        let p = pool();
        assert!(parse_chain(p.device(), 0, BB).is_empty());
        assert!(parse_chain(p.device(), usize::MAX / 2, BB).is_empty());
    }

    #[test]
    fn cyclic_forward_pointer_terminates() {
        let mut pool = pool();
        let mut free = Vec::new();
        let mut dirty = Vec::new();
        let mut area = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        // A record that exactly fills the rest of the block so the parser
        // must follow the forward pointer for the next header.
        let fill = BB - BLOCK_HDR - REC_HDR - ENTRY_HDR;
        let r = rec(1, 0x40, &vec![7u8; fill]);
        append_record(&mut area, &mut pool, &mut free, &r);
        // Point the block at itself.
        let head = area.head();
        pool.device_mut().write_u64(head, head as u64);
        let parsed = parse_chain(pool.device(), head, BB);
        // Terminates (no hang); the self-loop yields garbage that fails
        // checksum or len checks quickly.
        assert!(parsed.len() < 10_000);
    }

    #[test]
    fn write_at_patches_earlier_bytes_across_blocks() {
        let mut pool = pool();
        let mut free = Vec::new();
        let mut dirty = Vec::new();
        let mut area = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        let start = area.tail();
        area.append(&mut PoolStore::new(&mut pool, &mut free), &vec![0u8; 2 * BB], &mut dirty);
        let patch = vec![0xEE; 200];
        let n = area.write_at(&mut PoolStore::new(&mut pool, &mut free), start, &patch, &mut dirty);
        assert_eq!(n, 200);
        // Verify via a reader.
        let mut r = StreamReader::new(pool.device(), area.head(), BB);
        let mut buf = vec![0u8; 200];
        assert!(r.read(&mut buf));
        assert_eq!(buf, patch);
    }

    #[test]
    fn take_block_batches_and_reuses() {
        let mut pool = pool();
        let mut free = Vec::new();
        let b1 = take_block(&mut pool, &mut free, BB);
        assert!(!free.is_empty());
        free.push(b1);
        let b2 = take_block(&mut pool, &mut free, BB);
        assert_eq!(b1, b2);
    }

    #[test]
    fn checkpoint_roundtrips_across_blocks() {
        let mut pool = pool();
        let mut free = Vec::new();
        let mut dirty = Vec::new();
        let mut area = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        let ckpt = CheckpointRecord {
            watermark: 42,
            entries: vec![
                LogEntry { addr: 0x100, value: vec![7u8; 3 * BB] },
                LogEntry { addr: 0x500, value: vec![9u8; 5] },
            ],
        };
        area.append(
            &mut PoolStore::new(&mut pool, &mut free),
            &encode_checkpoint(&ckpt),
            &mut dirty,
        );
        let back = parse_checkpoint(pool.device(), area.head(), BB).expect("checkpoint parses");
        assert_eq!(back, ckpt);
    }

    #[test]
    fn torn_checkpoint_is_rejected() {
        let mut pool = pool();
        let mut free = Vec::new();
        let mut dirty = Vec::new();
        let mut area = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        let ckpt = CheckpointRecord {
            watermark: 7,
            entries: vec![LogEntry { addr: 0x40, value: vec![1, 2, 3, 4] }],
        };
        area.append(
            &mut PoolStore::new(&mut pool, &mut free),
            &encode_checkpoint(&ckpt),
            &mut dirty,
        );
        // Corrupt one payload byte: the checksum must reject the record.
        let addr = area.head() + BLOCK_HDR + CKPT_HDR + ENTRY_HDR + 1;
        pool.device_mut().write(addr, &[0xFF]);
        assert!(parse_checkpoint(pool.device(), area.head(), BB).is_none());
        // A wrong magic (e.g. a transaction record in the slot) is rejected.
        let mut area2 = LogArea::create(&mut PoolStore::new(&mut pool, &mut free), BB, &mut dirty);
        append_record(&mut area2, &mut pool, &mut free, &rec(1, 0x40, &[1; 4]));
        assert!(parse_checkpoint(pool.device(), area2.head(), BB).is_none());
        // Empty head.
        assert!(parse_checkpoint(pool.device(), 0, BB).is_none());
    }

    #[test]
    fn entry_parsing_handles_multiple_entries() {
        let r = LogRecord {
            ts: 9,
            entries: vec![
                LogEntry { addr: 8, value: vec![1] },
                LogEntry { addr: 16, value: vec![2, 3] },
            ],
        };
        let enc = encode_record(&r);
        let payload = &enc[REC_HDR..];
        assert_eq!(parse_entries(payload), r.entries);
    }
}
