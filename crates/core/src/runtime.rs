//! The [`SpecSpmt`] transaction runtime.

use specpmt_pmem::{CrashControl, CrashImage, PmemPool, TimingMode, BUMP_OFF, CACHE_LINE};
use specpmt_telemetry::{EventKind, Metric, Phase, Telemetry};
use specpmt_txn::{Recover, TxAccess, TxRuntime, TxStats};

use crate::layout::PoolLayout;
use crate::reclaim::{ReclaimState, ReclaimStats};
use crate::record::{
    encode_header_parts, encode_record, entry_header, Cursor, LogArea, PoolStore, ENTRY_HDR,
    REC_HDR,
};
use crate::recovery;
use crate::writeset::WriteSet;

/// How log reclamation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReclaimMode {
    /// Never reclaim (the log grows without bound).
    Disabled,
    /// Reclaim on a modelled dedicated background core: PM traffic is
    /// counted but elapsed time is recorded as [`TxStats::background_ns`]
    /// so harnesses exclude it from foreground execution time — the
    /// paper's dedicated-reclamation-thread setup.
    #[default]
    Background,
    /// Reclaim inline on the application thread, charging its time — the
    /// ablation configuration.
    Inline,
}

/// Configuration for [`SpecSpmt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecConfig {
    /// Log block size in bytes.
    pub block_bytes: usize,
    /// `true` selects the SpecSPMT-DP variant: data cache lines are also
    /// flushed (with a second fence) at commit. The paper uses it to
    /// separate the gain of removing fences from the gain of removing data
    /// persistence.
    pub data_persistence: bool,
    /// Reclamation mode.
    pub reclaim_mode: ReclaimMode,
    /// Log footprint (bytes, across all threads) that triggers reclamation
    /// at commit / `maintain` time.
    pub reclaim_threshold_bytes: usize,
    /// Number of logical threads (1..=[`PoolLayout::MAX_THREADS`]), each
    /// with its own log chain. Use [`SpecSpmt::set_thread`] to switch.
    pub threads: usize,
}

impl Default for SpecConfig {
    fn default() -> Self {
        Self {
            block_bytes: 4096,
            data_persistence: false,
            reclaim_mode: ReclaimMode::Background,
            reclaim_threshold_bytes: 1 << 20,
            threads: 1,
        }
    }
}

impl SpecConfig {
    /// The SpecSPMT-DP variant of this configuration.
    #[must_use]
    pub fn dp(mut self) -> Self {
        self.data_persistence = true;
        self
    }
}

#[derive(Debug)]
struct ThreadState {
    area: LogArea,
    in_tx: bool,
    tx_start: Cursor,
    /// Reusable write set (paper §4: only the last update of a datum in a
    /// transaction needs a log record): open-addressing index + payload
    /// arena + streaming record checksum, all cleared — never freed —
    /// between transactions, so steady-state commits allocate nothing.
    ws: WriteSet,
    /// Dirty `(addr, len)` log ranges of the open transaction; coalesced
    /// into one vectored flush at commit. Cleared, capacity kept.
    dirty: Vec<(usize, usize)>,
    /// SpecSPMT-DP only: cache-line *indices* of data stores, sorted and
    /// deduplicated at commit for the second (data) flush+fence.
    data_lines: Vec<usize>,
}

/// Software SpecPMT: the speculative-logging transaction runtime.
///
/// See the crate-level docs for the design; see [`SpecConfig`] for the
/// variants (`SpecSPMT` vs `SpecSPMT-DP`, background vs inline
/// reclamation).
#[derive(Debug)]
pub struct SpecSpmt {
    pool: PmemPool,
    cfg: SpecConfig,
    layout: PoolLayout,
    threads: Vec<ThreadState>,
    cur: usize,
    ts_counter: u64,
    free_blocks: Vec<usize>,
    stats: TxStats,
    /// Incremental-reclamation state: persistent freshness index,
    /// per-chain watermarked scan caches, cycle counters.
    reclaim: ReclaimState,
    /// Metrics registry + event tracer (off by default; see
    /// [`SpecSpmt::telemetry`]).
    tel: Telemetry,
}

impl SpecSpmt {
    /// Creates the runtime over `pool`, formatting fresh (empty) log chains
    /// for each configured thread. Construction runs with device timing
    /// disabled (it is setup, not measured execution).
    ///
    /// Calling this on a pool that held earlier SpecPMT state resets the
    /// log; use it only on fresh pools or after [`SpecSpmt::recover`] has
    /// repaired (and the caller has persisted) the data.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.threads` is 0 or exceeds
    /// [`PoolLayout::MAX_THREADS`], or if the block size is out of range.
    pub fn new(mut pool: PmemPool, cfg: SpecConfig) -> Self {
        assert!(
            (1..=PoolLayout::MAX_THREADS).contains(&cfg.threads),
            "thread count {} out of range (1..={})",
            cfg.threads,
            PoolLayout::MAX_THREADS
        );
        let prev = pool.device().timing();
        pool.device_mut().set_timing(TimingMode::Off);
        let layout = PoolLayout::format(&mut pool, cfg.threads, cfg.block_bytes);
        let mut free_blocks = Vec::new();
        let mut threads = Vec::with_capacity(cfg.threads);
        for tid in 0..cfg.threads {
            let mut dirty = Vec::new();
            let area = LogArea::create(
                &mut PoolStore::new(&mut pool, &mut free_blocks),
                cfg.block_bytes,
                &mut dirty,
            );
            layout.set_head(&mut pool, tid, area.head() as u64);
            let tx_start = area.tail();
            threads.push(ThreadState {
                area,
                in_tx: false,
                tx_start,
                ws: WriteSet::new(),
                dirty: Vec::new(),
                data_lines: Vec::new(),
            });
        }
        pool.device_mut().flush_everything();
        pool.device_mut().set_timing(prev);
        let tel = Telemetry::new(cfg.threads);
        Self {
            pool,
            cfg,
            layout,
            threads,
            cur: 0,
            ts_counter: 1,
            free_blocks,
            stats: TxStats::default(),
            reclaim: ReclaimState::default(),
            tel,
        }
    }

    /// The runtime's telemetry bundle: per-thread counters, commit-phase
    /// latency histograms, and the lifecycle event tracer. Disabled by
    /// default (enable with [`Telemetry::set_enabled`] /
    /// [`Telemetry::set_tracing`] or the `SPECPMT_TELEMETRY` /
    /// `SPECPMT_TRACE` environment toggles).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Cumulative reclamation counters (cycles, watermark skips, rewrites,
    /// bytes reclaimed).
    pub fn reclaim_stats(&self) -> ReclaimStats {
        self.reclaim.stats
    }

    /// The persisted pool layout this runtime formatted.
    pub fn layout(&self) -> PoolLayout {
        self.layout
    }

    /// The active configuration.
    pub fn config(&self) -> &SpecConfig {
        &self.cfg
    }

    /// Selects the logical thread subsequent operations act on.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn set_thread(&mut self, tid: usize) {
        assert!(tid < self.threads.len(), "thread {tid} out of range");
        self.cur = tid;
    }

    /// The currently selected logical thread.
    pub fn current_thread(&self) -> usize {
        self.cur
    }

    /// Number of logical threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Total PM bytes currently occupied by log chains.
    pub fn log_footprint(&self) -> usize {
        self.threads.iter().map(|t| t.area.footprint()).sum()
    }

    fn refresh_log_stats(&mut self) {
        self.stats.log_live_bytes = self.log_footprint() as u64;
        self.stats.log_peak_bytes = self.stats.log_peak_bytes.max(self.stats.log_live_bytes);
    }

    /// Explicitly runs a log-reclamation cycle (the paper's explicit API).
    /// No-op while any thread has an open transaction or when reclamation
    /// is disabled.
    ///
    /// Cycles are incremental (see [`crate::reclaim`]): chains whose
    /// `(head, generation)` watermark has not moved are not re-parsed, the
    /// freshness index persists across cycles and is only fed newly parsed
    /// records, and a chain whose compaction drops nothing is not
    /// rewritten. A cycle in which no chain changed does no PM work at
    /// all.
    pub fn reclaim_now(&mut self) {
        if self.cfg.reclaim_mode == ReclaimMode::Disabled {
            return;
        }
        if self.threads.iter().any(|t| t.in_tx) {
            return;
        }
        let t0 = self.pool.device().now_ns();
        // Host wall-clock for the telemetry histogram; cycles are rare, so
        // an unconditional `Instant::now()` here is well within budget.
        let host_t0 = std::time::Instant::now();
        let bytes_before = self.reclaim.stats.bytes_reclaimed;
        let block_bytes = self.cfg.block_bytes;
        self.reclaim.ensure_chains(self.threads.len());
        self.reclaim.stats.cycles += 1;

        // Phase 1: scan — re-parse only the chains whose watermark moved,
        // folding their records into the persistent freshness index (the
        // index is volatile and rebuilt from the log after a crash; it
        // needs no crash consistency of its own).
        let mut any_changed = false;
        for (tid, t) in self.threads.iter().enumerate() {
            let mark = (t.area.head(), t.area.generation());
            if self.reclaim.is_current(tid, mark) {
                self.reclaim.stats.chains_skipped += 1;
                continue;
            }
            any_changed = true;
            let records =
                crate::record::parse_chain(self.pool.device(), t.area.head(), block_bytes);
            self.reclaim.install_parse(tid, mark, records);
            self.reclaim.stats.chains_scanned += 1;
        }
        if !any_changed {
            // The index is exactly what the previous cycle left: every
            // chain it left fully fresh is still fully fresh.
            self.reclaim.stats.noop_cycles += 1;
            self.reclaim.stats.last_cycle_ns = self.pool.device().now_ns() - t0;
            let ns = u64::try_from(host_t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.tel.registry.add(self.cur, Metric::ReclaimCycles, 1);
            self.tel.registry.record(self.cur, Phase::ReclaimCycle, ns);
            self.tel.tracer.record(self.cur, EventKind::ReclaimCycle, 0, ns);
            return;
        }

        // Phase 2: compact — rewrite only the chains whose compaction
        // drops at least one entry (from the cached parses; freshness uses
        // committed records of *all* threads via the shared index).
        let mut all_dirty = Vec::new();
        let mut rewrites: Vec<(usize, LogArea, Vec<crate::record::LogRecord>)> = Vec::new();
        let mut dropped_total = 0u64;
        for tid in 0..self.threads.len() {
            let (kept, dropped, bytes) = self.reclaim.compact_chain(tid);
            if dropped == 0 {
                self.reclaim.stats.rewrites_skipped += 1;
                continue;
            }
            dropped_total += dropped;
            self.reclaim.stats.records_dropped += dropped;
            self.reclaim.stats.records_kept +=
                kept.iter().map(|r| r.entries.len() as u64).sum::<u64>();
            self.reclaim.stats.bytes_reclaimed += bytes;
            let mut dirty = Vec::new();
            let mut store = PoolStore::new(&mut self.pool, &mut self.free_blocks);
            let mut area = LogArea::create(&mut store, block_bytes, &mut dirty);
            for rec in &kept {
                area.append(&mut store, &encode_record(rec), &mut dirty);
            }
            area.write_terminator(&mut store, &mut dirty);
            all_dirty.extend(dirty);
            rewrites.push((tid, area, kept));
        }

        // Persist the new chains before any head pointer moves (fence 1),
        // then atomically swap the 8-byte head pointers (fence 2). A crash
        // between swaps leaves a mix of old and new chains — both parse to
        // the same committed state. In background mode the reclamator core
        // issues these as background writes: they contend for the WPQ but
        // do not stall the application thread.
        let background = self.cfg.reclaim_mode == ReclaimMode::Background;
        let spliced = !rewrites.is_empty();
        if spliced {
            self.pool.device().crash_point("seq/reclaim/pre_fence");
            if background {
                for &(addr, len) in &all_dirty {
                    self.pool.device_mut().background_range_write(addr, len);
                }
            } else {
                self.pool.device_mut().clwb_ranges(&all_dirty);
                self.pool.device_mut().sfence();
            }
            self.pool.device().crash_point("seq/reclaim/fence");
        }
        let layout = self.layout;
        for (tid, area, kept) in rewrites {
            let addr = layout.head_addr(tid);
            if background {
                let head = area.head() as u64;
                self.pool.device_mut().write_u64(addr, head);
                self.pool.device_mut().background_line_write(addr);
            } else {
                layout.set_head(&mut self.pool, tid, area.head() as u64);
            }
            self.reclaim.stats.chains_rewritten += 1;
            self.reclaim.commit_rewrite(tid, (area.head(), area.generation()), kept);
            let old = std::mem::replace(&mut self.threads[tid].area, area);
            self.free_blocks.extend(old.into_blocks());
            let tail = self.threads[tid].area.tail();
            self.threads[tid].tx_start = tail;
        }
        if spliced {
            self.pool.device().crash_point("seq/reclaim/splice");
        }

        self.stats.records_reclaimed += dropped_total;
        self.refresh_log_stats();
        self.reclaim.stats.last_cycle_ns = self.pool.device().now_ns() - t0;
        if self.cfg.reclaim_mode == ReclaimMode::Background {
            self.stats.background_ns += self.pool.device().now_ns() - t0;
        }
        let ns = u64::try_from(host_t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let bytes = self.reclaim.stats.bytes_reclaimed.saturating_sub(bytes_before);
        self.tel.registry.add(self.cur, Metric::ReclaimCycles, 1);
        self.tel.registry.record(self.cur, Phase::ReclaimCycle, ns);
        self.tel.tracer.record(self.cur, EventKind::ReclaimCycle, bytes, ns);
    }

    /// Adopts *external data* (Section 4.3.2): durable bytes produced by
    /// other software (or an earlier run) have no speculative log records,
    /// so an interrupted update to them could not be revoked. This creates
    /// the one-time snapshot the paper prescribes — a committed record of
    /// the region's current contents — after which the region is fully
    /// covered by speculative logging.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is open on the current thread.
    pub fn snapshot_external(&mut self, addr: usize, len: usize) {
        assert!(!self.in_tx(), "snapshot_external inside a transaction");
        let mut remaining = len;
        let mut at = addr;
        // Chunk the snapshot so a single call cannot monopolize a record.
        const CHUNK: usize = 16 * 1024;
        while remaining > 0 {
            let n = remaining.min(CHUNK);
            let content = self.pool.device().peek(at, n).to_vec();
            self.begin();
            self.write(at, &content);
            self.commit();
            at += n;
            remaining -= n;
        }
    }

    /// Switches out of speculative logging (Section 4.3.1): flushes all
    /// dirty durable data so the log is no longer needed for recovery, then
    /// truncates the log chains. After this another crash-consistency
    /// mechanism may own the pool.
    ///
    /// # Panics
    ///
    /// Panics if a transaction is open.
    pub fn switch_out(&mut self) {
        assert!(!self.threads.iter().any(|t| t.in_tx), "switch_out inside a transaction");
        // The paper's whole-cache flush (`wbnoinvd`) equivalent.
        self.pool.device_mut().flush_everything();
        for tid in 0..self.threads.len() {
            let mut dirty = Vec::new();
            let area = LogArea::create(
                &mut PoolStore::new(&mut self.pool, &mut self.free_blocks),
                self.cfg.block_bytes,
                &mut dirty,
            );
            self.pool.device_mut().clwb_ranges(&dirty);
            self.pool.device_mut().sfence();
            let layout = self.layout;
            layout.set_head(&mut self.pool, tid, area.head() as u64);
            let old = std::mem::replace(&mut self.threads[tid].area, area);
            self.free_blocks.extend(old.into_blocks());
            let tail = self.threads[tid].area.tail();
            self.threads[tid].tx_start = tail;
        }
        // The log was truncated: cached parses and the freshness index no
        // longer describe any live chain.
        self.reclaim.reset();
        self.refresh_log_stats();
    }
}

impl TxAccess for SpecSpmt {
    fn begin(&mut self) {
        let tid = self.cur;
        assert!(!self.threads[tid].in_tx, "nested transaction on thread {tid}");
        self.stats.tx_begun += 1;
        let Self { pool, free_blocks, threads, tel, stats, .. } = self;
        tel.registry.add(tid, Metric::Begins, 1);
        tel.tracer.record(tid, EventKind::Begin, stats.tx_begun, 0);
        let t = &mut threads[tid];
        t.ws.begin();
        t.dirty.clear();
        t.data_lines.clear();
        t.tx_start = t.area.tail();
        t.in_tx = true;
        // Reserve the header: zero length marks the record open/uncommitted.
        t.area.append(&mut PoolStore::new(pool, free_blocks), &[0u8; REC_HDR], &mut t.dirty);
    }

    fn write(&mut self, addr: usize, data: &[u8]) {
        let tid = self.cur;
        assert!(self.threads[tid].in_tx, "write outside transaction");
        let Self { pool, free_blocks, threads, stats, cfg, tel, .. } = self;
        let t = &mut threads[tid];
        // Write-set build phase: everything staged between begin and seal
        // (in-place store + log staging + dedup bookkeeping).
        let _ws_span = tel.registry.span(tid, Phase::Writeset);
        tel.tracer.record(tid, EventKind::Stage, addr as u64, data.len() as u64);
        // In-place data update — never flushed by SpecSPMT.
        pool.device_mut().write(addr, data);
        stats.updates += 1;
        stats.data_bytes += data.len() as u64;
        if cfg.data_persistence && !data.is_empty() {
            let first = addr / CACHE_LINE;
            let last = (addr + data.len() - 1) / CACHE_LINE;
            // Line *indices*; sorted and deduplicated once, at commit.
            t.data_lines.extend(first..=last);
        }
        // splog: record the *new* value. No flush, no fence.
        if let Some(slot) = t.ws.lookup(addr) {
            if slot.len == data.len() {
                // Write-set indexing: overwrite the previous entry for this
                // datum instead of appending a stale one.
                t.ws.patch(slot, data);
                t.area.write_at(
                    &mut PoolStore::new(pool, free_blocks),
                    slot.value_cursor,
                    data,
                    &mut t.dirty,
                );
                return;
            }
        }
        let mut store = PoolStore::new(pool, free_blocks);
        t.area.append(&mut store, &entry_header(addr, data.len()), &mut t.dirty);
        let value_cursor = t.area.tail();
        t.area.append(&mut store, data, &mut t.dirty);
        t.ws.stage(addr, data, value_cursor);
        stats.log_bytes += (ENTRY_HDR + data.len()) as u64;
        tel.registry.add(tid, Metric::LogEntries, 1);
    }

    fn read(&mut self, addr: usize, buf: &mut [u8]) {
        // Direct in-place access (a key SpecPMT property: no redirection).
        self.pool.device_mut().read(addr, buf);
    }

    fn commit(&mut self) {
        let tid = self.cur;
        assert!(self.threads[tid].in_tx, "commit outside transaction");
        let ts = self.ts_counter;
        self.ts_counter += 1;

        let Self { pool, free_blocks, threads, stats, cfg, tel, .. } = self;
        let t = &mut threads[tid];
        let commit_span = tel.registry.span(tid, Phase::Commit);
        let sim0 = pool.device().now_ns();

        // Seal: the record checksum was streamed while entries were
        // staged; only the fixed `(len, ts)` suffix is folded in here.
        let seal_span = tel.registry.span(tid, Phase::Seal);
        let header = encode_header_parts(ts, t.ws.payload().len(), t.ws.checksum(ts));
        seal_span.stop();
        tel.tracer.record(tid, EventKind::Seal, ts, t.ws.payload().len() as u64);
        pool.device().crash_point("seq/commit/seal");

        let append_span = tel.registry.span(tid, Phase::Append);
        let mut store = PoolStore::new(pool, free_blocks);
        let wrote = t.area.write_at(&mut store, t.tx_start, &header, &mut t.dirty);
        assert_eq!(wrote, REC_HDR, "record header must fit in the chain");
        t.area.write_terminator(&mut store, &mut t.dirty);
        append_span.stop();
        tel.registry.add(tid, Metric::LogAppends, 1);
        stats.log_bytes += REC_HDR as u64;
        pool.device().crash_point("seq/commit/append");

        // The single commit fence: one vectored flush covering the whole
        // record (coalesced, ascending lines — sequential and cheap) and
        // nothing else. The dirty list is cleared, not freed.
        let flush_span = tel.registry.span(tid, Phase::Flush);
        pool.device_mut().clwb_ranges(&t.dirty);
        flush_span.stop();
        tel.registry.add(tid, Metric::ClwbPlans, 1);
        tel.tracer.record(tid, EventKind::ClwbPlan, t.dirty.len() as u64, 0);
        t.dirty.clear();
        pool.device().crash_point("seq/commit/flush");
        let fence_span = tel.registry.span(tid, Phase::Fence);
        let fr = pool.device_mut().sfence();
        fence_span.stop();
        pool.device().crash_point("seq/commit/fence");
        tel.registry.add(tid, Metric::Fences, 1);
        tel.tracer.record(tid, EventKind::Fence, fr.stall_ns, fr.flushes);
        if fr.flushes > 0 {
            tel.registry.add(tid, Metric::WpqDrains, 1);
            if fr.stall_ns > 0 {
                tel.registry.record(tid, Phase::WpqDrain, fr.stall_ns);
                tel.tracer.record(tid, EventKind::WpqDrain, fr.stall_ns, fr.flushes);
            }
        }

        if cfg.data_persistence {
            // SpecSPMT-DP: also persist the data lines (second fence).
            t.data_lines.sort_unstable();
            t.data_lines.dedup();
            let flush_span = tel.registry.span(tid, Phase::Flush);
            pool.device_mut().clwb_lines(&t.data_lines);
            flush_span.stop();
            tel.registry.add(tid, Metric::ClwbPlans, 1);
            tel.tracer.record(tid, EventKind::ClwbPlan, t.data_lines.len() as u64, 0);
            t.data_lines.clear();
            // DP's second drain reuses the commit flush/fence labels: it
            // stresses the same ordering invariant at the same protocol
            // step, and a per-variant label would be unreachable from the
            // default-config smoke workloads.
            pool.device().crash_point("seq/commit/flush");
            let fence_span = tel.registry.span(tid, Phase::Fence);
            let fr = pool.device_mut().sfence();
            fence_span.stop();
            pool.device().crash_point("seq/commit/fence");
            tel.registry.add(tid, Metric::Fences, 1);
            tel.tracer.record(tid, EventKind::Fence, fr.stall_ns, fr.flushes);
        }

        t.in_tx = false;
        stats.tx_committed += 1;
        tel.registry.add(tid, Metric::Commits, 1);
        // Simulated device nanoseconds charged for the seal — the
        // scheduler-immune counterpart of the host-time `commit` span,
        // comparable across runtimes.
        tel.registry.record(tid, Phase::CommitSim, pool.device().now_ns().saturating_sub(sim0));
        let commit_ns = commit_span.stop();
        tel.tracer.record(tid, EventKind::Commit, ts, commit_ns);
        self.refresh_log_stats();

        // Implicit reclamation trigger (paper §4.2).
        if self.cfg.reclaim_mode != ReclaimMode::Disabled
            && self.log_footprint() > self.cfg.reclaim_threshold_bytes
        {
            self.reclaim_now();
        }
    }

    fn alloc(&mut self, size: usize, align: usize) -> usize {
        assert!(self.threads[self.cur].in_tx, "alloc outside transaction");
        let r = self.pool.reserve(size, align).expect("pool heap exhausted");
        if let Some(bump) = r.new_bump {
            // The bump update rides the speculative log like any other
            // durable write, making the allocation crash-atomic with the
            // transaction.
            self.write_u64(BUMP_OFF, bump);
        }
        r.off
    }

    fn free(&mut self, addr: usize, size: usize, align: usize) {
        self.pool.free(addr, size, align);
    }

    fn in_tx(&self) -> bool {
        self.threads[self.cur].in_tx
    }

    fn maintain(&mut self) {
        if self.cfg.reclaim_mode != ReclaimMode::Disabled
            && self.log_footprint() > self.cfg.reclaim_threshold_bytes
        {
            self.reclaim_now();
        }
    }

    specpmt_txn::impl_pool_tx_timing!();
}

impl TxRuntime for SpecSpmt {
    fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn pool_mut(&mut self) -> &mut PmemPool {
        &mut self.pool
    }

    fn name(&self) -> &'static str {
        if self.cfg.data_persistence {
            "SpecSPMT-DP"
        } else {
            "SpecSPMT"
        }
    }

    fn tx_stats(&self) -> TxStats {
        self.stats.clone()
    }
}

impl Recover for SpecSpmt {
    fn recover(image: &mut CrashImage) {
        recovery::recover_image(image);
    }
}

impl specpmt_txn::MultiThreaded for SpecSpmt {
    fn select_thread(&mut self, tid: usize) {
        self.set_thread(tid);
    }

    fn threads(&self) -> usize {
        self.thread_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::{CrashPolicy, PmemConfig, PmemDevice};

    fn runtime(cfg: SpecConfig) -> SpecSpmt {
        let pool = PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 22)));
        SpecSpmt::new(pool, cfg)
    }

    fn alloc_region(rt: &mut SpecSpmt, bytes: usize) -> usize {
        let base = rt.pool_mut().alloc_direct(bytes, 64).unwrap();
        rt.pool_mut().device_mut().set_timing(TimingMode::Off);
        rt.pool_mut().device_mut().persist_range(base, bytes);
        rt.pool_mut().device_mut().set_timing(TimingMode::On);
        base
    }

    #[test]
    fn committed_value_survives_all_lost_crash() {
        let mut rt = runtime(SpecConfig::default());
        let a = alloc_region(&mut rt, 64);
        rt.begin();
        rt.write_u64(a, 0xFEED);
        rt.commit();
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        SpecSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 0xFEED);
    }

    #[test]
    fn uncommitted_tx_is_revoked_even_if_data_evicted() {
        let mut rt = runtime(SpecConfig::default());
        let a = alloc_region(&mut rt, 64);
        rt.begin();
        rt.write_u64(a, 1);
        rt.commit();
        rt.begin();
        rt.write_u64(a, 2);
        // Crash before commit, with *everything* (data + torn log) evicted.
        let mut img = rt.pool().device().capture(CrashPolicy::AllSurvive);
        SpecSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 1, "uncommitted update must be revoked");
    }

    #[test]
    fn exactly_one_fence_per_commit() {
        let mut rt = runtime(SpecConfig::default());
        let a = alloc_region(&mut rt, 256);
        let before = rt.pool().device().stats().sfence_count;
        rt.begin();
        for i in 0..8 {
            rt.write_u64(a + i * 8, i as u64);
        }
        rt.commit();
        let after = rt.pool().device().stats().sfence_count;
        assert_eq!(after - before, 1, "SpecSPMT commits with a single fence");
    }

    #[test]
    fn dp_variant_adds_data_fence_and_flushes() {
        let mut rt = runtime(SpecConfig::default().dp());
        assert_eq!(rt.name(), "SpecSPMT-DP");
        let a = alloc_region(&mut rt, 256);
        let s0 = rt.pool().device().stats().clone();
        rt.begin();
        rt.write_u64(a, 1);
        rt.commit();
        let s1 = rt.pool().device().stats().delta_since(&s0);
        assert_eq!(s1.sfence_count, 2);
        // Data survives AllLost even without recovery.
        let img = rt.pool().device().capture(CrashPolicy::AllLost);
        assert_eq!(img.read_u64(a), 1);
    }

    #[test]
    fn write_set_indexing_dedups_repeated_updates() {
        let mut rt = runtime(SpecConfig::default());
        let a = alloc_region(&mut rt, 64);
        rt.begin();
        for v in 0..100u64 {
            rt.write_u64(a, v);
        }
        rt.commit();
        // Only one entry logged (plus header bytes).
        let logged = rt.tx_stats().log_bytes;
        assert_eq!(logged, (REC_HDR + ENTRY_HDR + 8) as u64);
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        SpecSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 99);
    }

    #[test]
    fn transactional_alloc_is_crash_atomic() {
        let mut rt = runtime(SpecConfig::default());
        let root = alloc_region(&mut rt, 64);
        rt.begin();
        let obj = rt.alloc(32, 8);
        rt.write_u64(obj, 77);
        rt.write_u64(root, obj as u64);
        rt.commit();
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        SpecSpmt::recover(&mut img);
        let obj2 = img.read_u64(root) as usize;
        assert_eq!(obj2, obj);
        assert_eq!(img.read_u64(obj2), 77);
        // Bump pointer is durable past the allocation.
        assert!(img.read_u64(BUMP_OFF) as usize >= obj + 32);
    }

    #[test]
    fn reclamation_shrinks_log_and_preserves_recovery() {
        let mut rt = runtime(SpecConfig {
            reclaim_threshold_bytes: usize::MAX, // manual trigger only
            ..SpecConfig::default()
        });
        let a = alloc_region(&mut rt, 64);
        for v in 0..2000u64 {
            rt.begin();
            rt.write_u64(a, v);
            rt.commit();
        }
        let before = rt.log_footprint();
        rt.reclaim_now();
        let after = rt.log_footprint();
        assert!(after < before, "reclamation must shrink the log: {before} -> {after}");
        assert!(rt.tx_stats().records_reclaimed > 0);
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        SpecSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 1999);
    }

    #[test]
    fn implicit_reclaim_bounds_footprint() {
        let mut rt =
            runtime(SpecConfig { reclaim_threshold_bytes: 64 * 1024, ..SpecConfig::default() });
        let a = alloc_region(&mut rt, 64);
        for v in 0..20_000u64 {
            rt.begin();
            rt.write_u64(a, v);
            rt.commit();
        }
        assert!(
            rt.log_footprint() <= 2 * 64 * 1024,
            "footprint {} exceeds bound",
            rt.log_footprint()
        );
    }

    #[test]
    fn background_reclaim_records_background_time() {
        let mut rt =
            runtime(SpecConfig { reclaim_threshold_bytes: 32 * 1024, ..SpecConfig::default() });
        let a = alloc_region(&mut rt, 64);
        for v in 0..10_000u64 {
            rt.begin();
            rt.write_u64(a, v);
            rt.commit();
        }
        assert!(rt.tx_stats().background_ns > 0);
    }

    #[test]
    fn inline_reclaim_charges_foreground() {
        let mut rt = runtime(SpecConfig {
            reclaim_mode: ReclaimMode::Inline,
            reclaim_threshold_bytes: 32 * 1024,
            ..SpecConfig::default()
        });
        let a = alloc_region(&mut rt, 64);
        for v in 0..10_000u64 {
            rt.begin();
            rt.write_u64(a, v);
            rt.commit();
        }
        assert_eq!(rt.tx_stats().background_ns, 0);
    }

    #[test]
    fn multi_thread_logs_recover_in_commit_order() {
        let mut rt = runtime(SpecConfig { threads: 2, ..SpecConfig::default() });
        let a = alloc_region(&mut rt, 64);
        rt.set_thread(0);
        rt.begin();
        rt.write_u64(a, 10);
        rt.commit();
        rt.set_thread(1);
        rt.begin();
        rt.write_u64(a, 20);
        rt.commit();
        rt.set_thread(0);
        rt.begin();
        rt.write_u64(a, 30);
        rt.commit();
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        SpecSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 30, "youngest commit wins across threads");
    }

    #[test]
    fn seventeen_threads_log_and_recover_past_legacy_cap() {
        // The legacy layout capped the runtime at 8 root-slot chains; the
        // dynamic descriptor must carry 17 without aliasing any head.
        let mut rt = runtime(SpecConfig { threads: 17, ..SpecConfig::default() });
        assert!(rt.layout().is_dynamic());
        let a = alloc_region(&mut rt, 17 * 64);
        for tid in 0..17 {
            rt.set_thread(tid);
            rt.begin();
            rt.write_u64(a + tid * 64, 1000 + tid as u64);
            rt.commit();
        }
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        SpecSpmt::recover(&mut img);
        for tid in 0..17 {
            assert_eq!(img.read_u64(a + tid * 64), 1000 + tid as u64, "thread {tid}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range (1..=4096)")]
    fn thread_count_past_layout_max_panics_with_actual_max() {
        let pool = PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 22)));
        let _ = SpecSpmt::new(
            pool,
            SpecConfig { threads: PoolLayout::MAX_THREADS + 1, ..SpecConfig::default() },
        );
    }

    #[test]
    fn reclaim_is_noop_while_any_tx_open() {
        let mut rt = runtime(SpecConfig { threads: 2, ..SpecConfig::default() });
        let a = alloc_region(&mut rt, 64);
        for v in 0..500u64 {
            rt.begin();
            rt.write_u64(a, v);
            rt.commit();
        }
        rt.set_thread(1);
        rt.begin();
        rt.write_u64(a, 999);
        let before = rt.log_footprint();
        rt.reclaim_now();
        assert_eq!(rt.log_footprint(), before);
        rt.commit();
    }

    #[test]
    fn snapshot_external_enables_revocation_of_foreign_data() {
        // Data written outside the runtime (another software's output).
        let mut rt = runtime(SpecConfig::default());
        let a = rt.pool_mut().alloc_direct(64, 64).unwrap();
        rt.pool_mut().device_mut().write_u64(a, 0x0123);
        rt.pool_mut().device_mut().persist_range(a, 8);

        rt.snapshot_external(a, 64);
        // An interrupted update to the foreign datum is now revocable.
        rt.begin();
        rt.write_u64(a, 0xBAD);
        let mut img = rt.pool().device().capture(CrashPolicy::AllSurvive);
        SpecSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 0x0123);
    }

    #[test]
    fn snapshot_external_chunks_large_regions() {
        let mut rt = runtime(SpecConfig::default());
        let a = rt.pool_mut().alloc_direct(48 * 1024, 64).unwrap();
        rt.snapshot_external(a, 48 * 1024);
        // 3 chunk transactions of 16 KiB each.
        assert_eq!(rt.tx_stats().tx_committed, 3);
    }

    #[test]
    fn switch_out_makes_data_durable_without_log() {
        let mut rt = runtime(SpecConfig::default());
        let a = alloc_region(&mut rt, 64);
        rt.begin();
        rt.write_u64(a, 0xCAFE);
        rt.commit();
        rt.switch_out();
        // No recovery at all: data must already be persistent.
        let img = rt.pool().device().capture(CrashPolicy::AllLost);
        assert_eq!(img.read_u64(a), 0xCAFE);
    }

    #[test]
    fn large_transaction_spills_blocks() {
        let mut rt = runtime(SpecConfig { block_bytes: 256, ..SpecConfig::default() });
        let a = alloc_region(&mut rt, 8192);
        rt.begin();
        for i in 0..512 {
            rt.write_u64(a + i * 8, i as u64);
        }
        rt.commit();
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        SpecSpmt::recover(&mut img);
        for i in 0..512 {
            assert_eq!(img.read_u64(a + i * 8), i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "nested transaction")]
    fn nested_begin_panics() {
        let mut rt = runtime(SpecConfig::default());
        rt.begin();
        rt.begin();
    }

    #[test]
    #[should_panic(expected = "outside transaction")]
    fn write_outside_tx_panics() {
        let mut rt = runtime(SpecConfig::default());
        let a = rt.pool_mut().alloc_direct(8, 8).unwrap();
        rt.write_u64(a, 1);
    }
}
