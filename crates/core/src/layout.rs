//! The persisted pool layout descriptor.
//!
//! The paper's software design (§4) gives every thread a private
//! append-only log chain, which means the pool must record *where each
//! thread's chain head lives*. Early versions of this runtime burned one
//! pool root slot per thread, capping the runtime at 8 threads (the pool
//! has 16 root slots and half are spoken for). [`PoolLayout`] removes the
//! cap: at format time the runtime allocates a **layout descriptor** on
//! the heap — a registration table of chain-head slots plus the block
//! size — checksums the static part, and points root slot [`LAYOUT_SLOT`]
//! at it. Everything that parses a pool after a crash
//! ([`crate::recovery`], [`crate::inspect`]) reads the descriptor instead
//! of assuming the old fixed slots.
//!
//! ```text
//! root slot 3 (LAYOUT_SLOT) ──► descriptor (heap, 64-byte aligned)
//!   0  .. 8   layout magic "SPLAYOUT"
//!   8  .. 12  version (u32)
//!   12 .. 16  chain capacity (u32, 1..=4096)
//!   16 .. 24  log block bytes (u64)
//!   24 .. 32  FNV-1a checksum of bytes 0..24
//!   32 .. 40  checkpoint chain head (u64, v2+; 0 = no checkpoint)
//!   40 .. 48  black-box region base (u64, v3+; 0 = recorder never on)
//!   48 .. 48 + 8·capacity   per-thread chain-head pointers (u64 each)
//! ```
//!
//! The header (bytes 0..32) is written once at format time and never
//! mutated, so its checksum catches a torn or foreign descriptor. The
//! checkpoint head and the head table **are** mutated at runtime (log
//! reclamation and checkpointing splice new chains in by atomically
//! rewriting one aligned 8-byte pointer — the paper's two-fence protocol),
//! so they are deliberately *not* covered by the checksum; a head pointer
//! self-validates by chain (or checkpoint-record) parsing, exactly like
//! the old root slots did.
//!
//! # Dynamic registration
//!
//! A v2 descriptor is a *registration table*: `capacity` is how many
//! chain-head slots exist, not how many threads are live. Threads (and
//! `specpmt-kv` shard pools) attach at runtime by claiming the next free
//! slot; when the table fills, [`PoolLayout::grow_shared`] allocates a
//! larger descriptor, copies the head table and checkpoint head, persists
//! it, and atomically re-points [`LAYOUT_SLOT`] — a crash sees either the
//! old or the new descriptor, both of which describe every committed
//! chain.
//!
//! # Legacy pools
//!
//! A pool whose [`LAYOUT_SLOT`] root is zero is a *legacy* pool: the
//! hardware models and baselines (`specpmt-hwtx`, `specpmt-baselines`)
//! still format [`LEGACY_CHAIN_SLOTS`] fixed chains rooted at
//! [`LOG_HEAD_SLOT_BASE`] with the block size in [`BLOCK_BYTES_SLOT`].
//! A v1 descriptor (PR 3 .. PR 8 pools: head table at offset 32, no
//! checkpoint head, capacity ≤ 32) still parses, as does a v2 descriptor
//! (PR 9 pools: checkpoint head at 32, head table at 40, no black-box
//! slot). [`PoolLayout::read`] transparently degrades, so one
//! recovery/inspection path serves all four generations of pool.

use specpmt_pmem::{root_off, PmemPool, SharedPmemPool, POOL_HEADER_SIZE, POOL_MAGIC};

use crate::checksum::fnv1a64;
use crate::record::ByteSource;

/// Root slot pointing at the layout descriptor (0 = legacy pool).
pub const LAYOUT_SLOT: usize = 3;

/// Root slot holding the log block size (mirrored by [`PoolLayout`] for
/// legacy tooling; authoritative only on legacy pools).
pub const BLOCK_BYTES_SLOT: usize = 7;

/// First root slot of the fixed per-thread chain heads on *legacy* pools.
pub const LOG_HEAD_SLOT_BASE: usize = 8;

/// Number of fixed chain-head root slots on legacy pools (the old
/// `MAX_THREADS` cap).
pub const LEGACY_CHAIN_SLOTS: usize = 8;

/// Magic identifying a layout descriptor ("SPLAYOUT").
pub const LAYOUT_MAGIC: u64 = 0x5350_4c41_594f_5554;

/// Current descriptor version (v3: v2 + the flight-recorder region base).
pub const LAYOUT_VERSION: u32 = 3;

/// The registration-table + checkpoint-head descriptor version (PR 9
/// pools: head table at offset 40, no black-box slot). Still readable.
pub const LAYOUT_VERSION_V2: u32 = 2;

/// The fixed-at-format descriptor version (head table at offset 32, no
/// checkpoint head). Still readable.
pub const LAYOUT_VERSION_V1: u32 = 1;

/// Descriptor header bytes preceding the head table in a **v1**
/// descriptor.
pub const DESC_HDR_V1: usize = 32;

/// Descriptor header bytes preceding the head table in a **v2**
/// descriptor (v1 header + the mutable checkpoint-head pointer).
pub const DESC_HDR_V2: usize = 40;

/// Descriptor header bytes preceding the head table in a **v3**
/// descriptor (v2 header + the mutable black-box region base).
pub const DESC_HDR: usize = 48;

/// Offset of the checkpoint chain head within a v2+ descriptor.
pub const CKPT_HEAD_OFF: usize = 32;

/// Offset of the black-box (flight recorder) region base within a v3
/// descriptor. Like the checkpoint head it is mutable, non-checksummed
/// state: the region it points at self-validates via its own
/// checksummed header, and 0 means the recorder was never enabled.
pub const BBOX_HEAD_OFF: usize = 40;

/// The v1 descriptor's capacity cap (reads of old pools enforce it).
const MAX_THREADS_V1: usize = 32;

/// Valid log block sizes (shared with recovery's plausibility check).
const BLOCK_BYTES_RANGE: std::ops::RangeInclusive<usize> = 64..=(1 << 20);

/// A parsed (or freshly formatted) pool layout: where each thread's log
/// chain head lives, where the checkpoint chain head lives, and how large
/// log blocks are.
///
/// Copyable by design — the runtimes keep one (behind a lock when the
/// registration table can grow) and pass it around freely while mutating
/// the pool it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLayout {
    threads: usize,
    block_bytes: usize,
    /// Heap offset of the descriptor; 0 marks a legacy fixed-slot layout.
    desc_base: usize,
    /// Descriptor version (0 on legacy pools).
    version: u32,
}

fn read_u64_at<S: ByteSource>(src: &S, addr: usize) -> Option<u64> {
    let mut b = [0u8; 8];
    src.read_at(addr, &mut b).then(|| u64::from_le_bytes(b))
}

impl PoolLayout {
    /// Maximum chain slots a pool's registration table can grow to. The
    /// old fixed-at-format cap was 32; v2 descriptors grow on demand up
    /// to this bound (8 · 4096 = 32 KiB of head table, still tiny next to
    /// a single log block chain).
    pub const MAX_THREADS: usize = 4096;

    fn descriptor_bytes(threads: usize, block_bytes: usize) -> Vec<u8> {
        let mut d = vec![0u8; DESC_HDR + 8 * threads];
        d[0..8].copy_from_slice(&LAYOUT_MAGIC.to_le_bytes());
        d[8..12].copy_from_slice(&LAYOUT_VERSION.to_le_bytes());
        d[12..16].copy_from_slice(&(threads as u32).to_le_bytes());
        d[16..24].copy_from_slice(&(block_bytes as u64).to_le_bytes());
        let sum = fnv1a64(&d[0..24]);
        d[24..32].copy_from_slice(&sum.to_le_bytes());
        d
    }

    fn check_format_args(threads: usize, block_bytes: usize) {
        assert!(
            (1..=Self::MAX_THREADS).contains(&threads),
            "thread count {threads} out of range (1..={})",
            Self::MAX_THREADS
        );
        assert!(
            BLOCK_BYTES_RANGE.contains(&block_bytes),
            "block size {block_bytes} out of range ({}..={})",
            BLOCK_BYTES_RANGE.start(),
            BLOCK_BYTES_RANGE.end()
        );
    }

    /// Formats a layout descriptor on `pool`'s heap (head table and
    /// checkpoint head zeroed) and roots it at [`LAYOUT_SLOT`].
    /// [`BLOCK_BYTES_SLOT`] is mirrored for legacy tooling.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `block_bytes` is out of range, or the heap
    /// cannot hold the descriptor.
    pub fn format(pool: &mut PmemPool, threads: usize, block_bytes: usize) -> Self {
        Self::check_format_args(threads, block_bytes);
        let bytes = Self::descriptor_bytes(threads, block_bytes);
        let desc_base =
            pool.alloc_direct(bytes.len(), 64).expect("pool too small for layout descriptor");
        pool.device_mut().write(desc_base, &bytes);
        pool.device_mut().persist_range(desc_base, bytes.len());
        pool.set_root_direct(LAYOUT_SLOT, desc_base as u64);
        pool.set_root_direct(BLOCK_BYTES_SLOT, block_bytes as u64);
        Self { threads, block_bytes, desc_base, version: LAYOUT_VERSION }
    }

    /// [`PoolLayout::format`] for the shared (concurrent) pool.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `block_bytes` is out of range, or the heap
    /// cannot hold the descriptor.
    pub fn format_shared(pool: &SharedPmemPool, threads: usize, block_bytes: usize) -> Self {
        Self::check_format_args(threads, block_bytes);
        let bytes = Self::descriptor_bytes(threads, block_bytes);
        let desc_base =
            pool.alloc_direct(bytes.len(), 64).expect("pool too small for layout descriptor");
        let h = pool.handle();
        h.write(desc_base, &bytes);
        h.persist_range(desc_base, bytes.len());
        pool.set_root_direct(LAYOUT_SLOT, desc_base as u64);
        pool.set_root_direct(BLOCK_BYTES_SLOT, block_bytes as u64);
        Self { threads, block_bytes, desc_base, version: LAYOUT_VERSION }
    }

    /// Grows the registration table to at least `min_capacity` slots:
    /// allocates a fresh (larger) descriptor, copies the live head table
    /// and checkpoint head into it, persists it fully, then atomically
    /// re-points [`LAYOUT_SLOT`] at it. Returns the new layout.
    ///
    /// The old descriptor is left in place (the pool heap is a bump
    /// allocator); a crash between the copy and the root swap sees the
    /// old descriptor, which still describes every committed chain —
    /// slots beyond its capacity are by construction empty at that point.
    ///
    /// # Panics
    ///
    /// Panics on a legacy layout, if `min_capacity` exceeds
    /// [`Self::MAX_THREADS`], or if the heap cannot hold the new
    /// descriptor.
    pub fn grow_shared(&self, pool: &SharedPmemPool, min_capacity: usize) -> Self {
        assert!(self.desc_base != 0, "legacy pools cannot grow a registration table");
        assert!(
            min_capacity <= Self::MAX_THREADS,
            "thread count {min_capacity} out of range (1..={})",
            Self::MAX_THREADS
        );
        if min_capacity <= self.threads {
            return *self;
        }
        // Double-at-least growth keeps the number of root swaps
        // logarithmic in the final thread count.
        let capacity = min_capacity.max(self.threads * 2).min(Self::MAX_THREADS);
        Self::check_format_args(capacity, self.block_bytes);
        let mut bytes = Self::descriptor_bytes(capacity, self.block_bytes);
        let h = pool.handle();
        // Carry the mutable tail over: checkpoint head, black-box base,
        // and the live head table.
        bytes[CKPT_HEAD_OFF..CKPT_HEAD_OFF + 8]
            .copy_from_slice(&(self.ckpt_head(&h) as u64).to_le_bytes());
        bytes[BBOX_HEAD_OFF..BBOX_HEAD_OFF + 8]
            .copy_from_slice(&(self.bbox_head(&h) as u64).to_le_bytes());
        for tid in 0..self.threads {
            let head = self.head(&h, tid) as u64;
            let off = DESC_HDR + 8 * tid;
            bytes[off..off + 8].copy_from_slice(&head.to_le_bytes());
        }
        let desc_base =
            pool.alloc_direct(bytes.len(), 64).expect("pool too small for grown descriptor");
        h.write(desc_base, &bytes);
        h.persist_range(desc_base, bytes.len());
        // The atomic generation switch: an aligned 8-byte root store,
        // persisted inside `set_root_direct`.
        pool.set_root_direct(LAYOUT_SLOT, desc_base as u64);
        Self {
            threads: capacity,
            block_bytes: self.block_bytes,
            desc_base,
            version: LAYOUT_VERSION,
        }
    }

    /// Parses the layout from any byte source (crash image, live device or
    /// device handle).
    ///
    /// Returns `None` when the source is not a SpecPMT pool, the descriptor
    /// is corrupt, or (on a legacy pool) the block size is implausible.
    pub fn read<S: ByteSource>(src: &S) -> Option<Self> {
        if src.source_len() < POOL_HEADER_SIZE || read_u64_at(src, 0)? != POOL_MAGIC {
            return None;
        }
        let desc_base = read_u64_at(src, root_off(LAYOUT_SLOT))? as usize;
        if desc_base == 0 {
            // Legacy fixed-slot pool (hardware models, baselines, pre-layout
            // software pools).
            let block_bytes = read_u64_at(src, root_off(BLOCK_BYTES_SLOT))? as usize;
            if !BLOCK_BYTES_RANGE.contains(&block_bytes) {
                return None;
            }
            return Some(Self {
                threads: LEGACY_CHAIN_SLOTS,
                block_bytes,
                desc_base: 0,
                version: 0,
            });
        }
        if desc_base < POOL_HEADER_SIZE
            || desc_base.checked_add(DESC_HDR_V1).is_none_or(|end| end > src.source_len())
        {
            return None;
        }
        let mut hdr = [0u8; DESC_HDR_V1];
        if !src.read_at(desc_base, &mut hdr) {
            return None;
        }
        if u64::from_le_bytes(hdr[0..8].try_into().expect("8 bytes")) != LAYOUT_MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(hdr[8..12].try_into().expect("4 bytes"));
        if !(LAYOUT_VERSION_V1..=LAYOUT_VERSION).contains(&version) {
            return None;
        }
        let sum = u64::from_le_bytes(hdr[24..32].try_into().expect("8 bytes"));
        if sum != fnv1a64(&hdr[0..24]) {
            return None;
        }
        let threads = u32::from_le_bytes(hdr[12..16].try_into().expect("4 bytes")) as usize;
        let block_bytes = u64::from_le_bytes(hdr[16..24].try_into().expect("8 bytes")) as usize;
        let max = if version == LAYOUT_VERSION_V1 { MAX_THREADS_V1 } else { Self::MAX_THREADS };
        let hdr_len = match version {
            LAYOUT_VERSION_V1 => DESC_HDR_V1,
            LAYOUT_VERSION_V2 => DESC_HDR_V2,
            _ => DESC_HDR,
        };
        if !(1..=max).contains(&threads)
            || !BLOCK_BYTES_RANGE.contains(&block_bytes)
            || desc_base + hdr_len + 8 * threads > src.source_len()
        {
            return None;
        }
        Some(Self { threads, block_bytes, desc_base, version })
    }

    /// Number of chain-head slots in the registration table (the number of
    /// per-thread log chains recovery must consider; unclaimed slots hold
    /// a zero head and parse as empty chains).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Log block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// `true` when the layout lives in a heap descriptor (vs the legacy
    /// fixed root slots).
    pub fn is_dynamic(&self) -> bool {
        self.desc_base != 0
    }

    /// Descriptor version: 0 legacy, 1 fixed-at-format, 2 registration
    /// table + checkpoint head, 3 adds the black-box region base.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Heap offset of the descriptor (0 on legacy pools).
    pub fn desc_base(&self) -> usize {
        self.desc_base
    }

    /// Bytes preceding this descriptor's head table.
    fn table_off(&self) -> usize {
        match self.version {
            LAYOUT_VERSION_V1 => DESC_HDR_V1,
            LAYOUT_VERSION_V2 => DESC_HDR_V2,
            _ => DESC_HDR,
        }
    }

    /// Pool offset of thread `tid`'s chain-head pointer (an aligned u64 —
    /// reclamation's atomic splice target).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range for this layout.
    pub fn head_addr(&self, tid: usize) -> usize {
        assert!(tid < self.threads, "thread {tid} out of range (layout has {})", self.threads);
        if self.desc_base == 0 {
            root_off(LOG_HEAD_SLOT_BASE + tid)
        } else {
            self.desc_base + self.table_off() + 8 * tid
        }
    }

    /// Reads thread `tid`'s chain head from `src` (0 = empty chain).
    pub fn head<S: ByteSource>(&self, src: &S, tid: usize) -> usize {
        read_u64_at(src, self.head_addr(tid)).unwrap_or(0) as usize
    }

    /// Writes and immediately persists thread `tid`'s chain head.
    pub fn set_head(&self, pool: &mut PmemPool, tid: usize, head: u64) {
        use specpmt_pmem::CrashControl;
        let addr = self.head_addr(tid);
        pool.device_mut().write_u64(addr, head);
        pool.device().crash_point("layout/head_write");
        pool.device_mut().persist_range(addr, 8);
        pool.device().crash_point("layout/head_persist");
    }

    /// [`PoolLayout::set_head`] for the shared (concurrent) pool.
    pub fn set_head_shared(&self, pool: &SharedPmemPool, tid: usize, head: u64) {
        let addr = self.head_addr(tid);
        let h = pool.handle();
        h.write_u64(addr, head);
        h.crash_point("layout/head_write");
        h.persist_range(addr, 8);
        h.crash_point("layout/head_persist");
    }

    /// Pool offset of the checkpoint chain head, when this descriptor has
    /// one (v2+ only).
    pub fn ckpt_head_addr(&self) -> Option<usize> {
        (self.desc_base != 0 && self.version >= LAYOUT_VERSION_V2)
            .then(|| self.desc_base + CKPT_HEAD_OFF)
    }

    /// Reads the checkpoint chain head (0 = no checkpoint; legacy and v1
    /// pools always read 0).
    pub fn ckpt_head<S: ByteSource>(&self, src: &S) -> usize {
        match self.ckpt_head_addr() {
            Some(addr) => read_u64_at(src, addr).unwrap_or(0) as usize,
            None => 0,
        }
    }

    /// Writes and immediately persists the checkpoint chain head — the
    /// atomic splice of the checkpoint protocol (crash sites around it are
    /// placed by the caller, `SpecSpmtShared::write_checkpoint`).
    ///
    /// # Panics
    ///
    /// Panics on a layout without a checkpoint slot (legacy or v1).
    pub fn set_ckpt_head_shared(&self, pool: &SharedPmemPool, head: u64) {
        let addr = self.ckpt_head_addr().expect("layout has no checkpoint slot (v1/legacy)");
        let h = pool.handle();
        h.write_u64(addr, head);
        h.persist_range(addr, 8);
    }

    /// Pool offset of the black-box (flight recorder) region base, when
    /// this descriptor has one (v3+ only).
    pub fn bbox_head_addr(&self) -> Option<usize> {
        (self.desc_base != 0 && self.version >= LAYOUT_VERSION)
            .then(|| self.desc_base + BBOX_HEAD_OFF)
    }

    /// Reads the black-box region base (0 = recorder never enabled;
    /// legacy, v1 and v2 pools always read 0).
    pub fn bbox_head<S: ByteSource>(&self, src: &S) -> usize {
        match self.bbox_head_addr() {
            Some(addr) => read_u64_at(src, addr).unwrap_or(0) as usize,
            None => 0,
        }
    }

    /// Writes and immediately persists the black-box region base. Done
    /// once at runtime construction (setup, not the commit path), so the
    /// extra fence here is free; the region it points at self-validates
    /// via its own checksummed header.
    ///
    /// # Panics
    ///
    /// Panics on a layout without a black-box slot (legacy, v1 or v2).
    pub fn set_bbox_head_shared(&self, pool: &SharedPmemPool, base: u64) {
        let addr = self.bbox_head_addr().expect("layout has no black-box slot (pre-v3)");
        let h = pool.handle();
        h.write_u64(addr, base);
        h.persist_range(addr, 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::{CrashControl, CrashImage, CrashPolicy, PmemConfig, PmemDevice};

    fn pool() -> PmemPool {
        PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 20)))
    }

    #[test]
    fn format_then_read_round_trips() {
        for threads in [1usize, 2, 8, 17, 32, 100] {
            let mut p = pool();
            let l = PoolLayout::format(&mut p, threads, 4096);
            assert!(l.is_dynamic());
            assert_eq!(l.version(), LAYOUT_VERSION);
            assert_eq!(l.threads(), threads);
            assert_eq!(l.block_bytes(), 4096);
            let img = p.device().capture(CrashPolicy::AllLost);
            let back = PoolLayout::read(&img).expect("layout parses from crash image");
            assert_eq!(back, l, "{threads} threads");
        }
    }

    #[test]
    fn head_table_survives_crash() {
        let mut p = pool();
        let l = PoolLayout::format(&mut p, 17, 256);
        l.set_head(&mut p, 16, 0xABCD);
        let img = p.device().capture(CrashPolicy::AllLost);
        let back = PoolLayout::read(&img).unwrap();
        assert_eq!(back.head(&img, 16), 0xABCD);
        assert_eq!(back.head(&img, 0), 0, "unset heads read as empty");
    }

    #[test]
    fn v1_descriptor_still_parses_with_table_at_offset_32() {
        // Hand-build a v1 descriptor (what PR 3..8 pools persisted): head
        // table directly after the 32-byte header, no checkpoint slot.
        let mut p = pool();
        let threads = 5usize;
        let mut d = vec![0u8; DESC_HDR_V1 + 8 * threads];
        d[0..8].copy_from_slice(&LAYOUT_MAGIC.to_le_bytes());
        d[8..12].copy_from_slice(&LAYOUT_VERSION_V1.to_le_bytes());
        d[12..16].copy_from_slice(&(threads as u32).to_le_bytes());
        d[16..24].copy_from_slice(&4096u64.to_le_bytes());
        let sum = fnv1a64(&d[0..24]);
        d[24..32].copy_from_slice(&sum.to_le_bytes());
        d[32..40].copy_from_slice(&0x1000u64.to_le_bytes()); // head[0]
        let base = p.alloc_direct(d.len(), 64).unwrap();
        p.device_mut().write(base, &d);
        p.device_mut().persist_range(base, d.len());
        p.set_root_direct(LAYOUT_SLOT, base as u64);
        p.set_root_direct(BLOCK_BYTES_SLOT, 4096);
        let img = p.device().capture(CrashPolicy::AllLost);
        let l = PoolLayout::read(&img).expect("v1 descriptor parses");
        assert_eq!(l.version(), LAYOUT_VERSION_V1);
        assert_eq!(l.threads(), threads);
        assert_eq!(l.head(&img, 0), 0x1000, "v1 head table sits at offset 32");
        assert_eq!(l.ckpt_head(&img), 0, "v1 descriptors have no checkpoint head");
        assert!(l.ckpt_head_addr().is_none());
    }

    #[test]
    fn v2_descriptor_still_parses_with_table_at_offset_40() {
        // Hand-build a v2 descriptor (what PR 9 pools persisted):
        // checkpoint head at 32, head table directly after the 40-byte
        // header, no black-box slot.
        let mut p = pool();
        let threads = 3usize;
        let mut d = vec![0u8; DESC_HDR_V2 + 8 * threads];
        d[0..8].copy_from_slice(&LAYOUT_MAGIC.to_le_bytes());
        d[8..12].copy_from_slice(&LAYOUT_VERSION_V2.to_le_bytes());
        d[12..16].copy_from_slice(&(threads as u32).to_le_bytes());
        d[16..24].copy_from_slice(&4096u64.to_le_bytes());
        let sum = fnv1a64(&d[0..24]);
        d[24..32].copy_from_slice(&sum.to_le_bytes());
        d[CKPT_HEAD_OFF..CKPT_HEAD_OFF + 8].copy_from_slice(&0x5555u64.to_le_bytes());
        d[40..48].copy_from_slice(&0x1000u64.to_le_bytes()); // head[0]
        let base = p.alloc_direct(d.len(), 64).unwrap();
        p.device_mut().write(base, &d);
        p.device_mut().persist_range(base, d.len());
        p.set_root_direct(LAYOUT_SLOT, base as u64);
        p.set_root_direct(BLOCK_BYTES_SLOT, 4096);
        let img = p.device().capture(CrashPolicy::AllLost);
        let l = PoolLayout::read(&img).expect("v2 descriptor parses");
        assert_eq!(l.version(), LAYOUT_VERSION_V2);
        assert_eq!(l.threads(), threads);
        assert_eq!(l.head(&img, 0), 0x1000, "v2 head table sits at offset 40");
        assert_eq!(l.ckpt_head(&img), 0x5555, "v2 checkpoint head still readable");
        assert!(l.ckpt_head_addr().is_some(), "v2 keeps its checkpoint slot under v3 code");
        assert_eq!(l.bbox_head(&img), 0, "v2 descriptors have no black-box slot");
        assert!(l.bbox_head_addr().is_none());
    }

    #[test]
    fn bbox_head_round_trips_and_survives_growth() {
        let dev = specpmt_pmem::SharedPmemDevice::new(PmemConfig::new(1 << 20));
        let p = SharedPmemPool::create(dev);
        let l = PoolLayout::format_shared(&p, 2, 512);
        assert_eq!(l.bbox_head(&p.handle()), 0, "fresh pools start with no recorder region");
        l.set_bbox_head_shared(&p, 0x7777);
        assert_eq!(l.bbox_head(&p.handle()), 0x7777);
        let grown = l.grow_shared(&p, 5);
        let img = p.device().capture(CrashPolicy::AllLost);
        let back = PoolLayout::read(&img).unwrap();
        assert_eq!(back, grown);
        assert_eq!(back.bbox_head(&img), 0x7777, "growth carries the black-box base");
    }

    #[test]
    fn legacy_pool_degrades_to_fixed_slots() {
        // A pool formatted the old way: block size + fixed root slots, no
        // descriptor (LAYOUT_SLOT stays 0). hwtx/baselines still do this.
        let mut p = pool();
        p.set_root_direct(BLOCK_BYTES_SLOT, 4096);
        p.set_root_direct(LOG_HEAD_SLOT_BASE + 5, 0x1000);
        let img = p.device().capture(CrashPolicy::AllLost);
        let l = PoolLayout::read(&img).expect("legacy layout parses");
        assert!(!l.is_dynamic());
        assert_eq!(l.threads(), LEGACY_CHAIN_SLOTS);
        assert_eq!(l.block_bytes(), 4096);
        assert_eq!(l.head_addr(5), root_off(LOG_HEAD_SLOT_BASE + 5));
        assert_eq!(l.head(&img, 5), 0x1000);
        assert_eq!(l.ckpt_head(&img), 0, "legacy pools never have a checkpoint");
    }

    #[test]
    fn garbage_and_corruption_are_rejected() {
        // Not a pool at all.
        assert!(PoolLayout::read(&CrashImage::new(vec![0xAB; 4096])).is_none());
        // A pool with no runtime metadata (legacy block size 0).
        let img = pool().device().capture(CrashPolicy::AllSurvive);
        assert!(PoolLayout::read(&img).is_none());
        // A torn descriptor: flip one header byte, checksum must catch it.
        let mut p = pool();
        let l = PoolLayout::format(&mut p, 4, 4096);
        let mut img = p.device().capture(CrashPolicy::AllLost);
        let b = img.read_u64(l.desc_base() + 16);
        img.write_bytes(l.desc_base() + 16, &(b ^ 1).to_le_bytes());
        assert!(PoolLayout::read(&img).is_none(), "checksum must reject a torn descriptor");
        // A dangling descriptor pointer.
        let mut img2 = p.device().capture(CrashPolicy::AllLost);
        img2.write_bytes(root_off(LAYOUT_SLOT), &(u64::MAX).to_le_bytes());
        assert!(PoolLayout::read(&img2).is_none());
        // An unknown version.
        let mut img3 = p.device().capture(CrashPolicy::AllLost);
        img3.write_bytes(l.desc_base() + 8, &99u32.to_le_bytes());
        assert!(PoolLayout::read(&img3).is_none(), "unknown versions are rejected");
    }

    #[test]
    #[should_panic(expected = "out of range (1..=4096)")]
    fn format_rejects_zero_threads() {
        let mut p = pool();
        let _ = PoolLayout::format(&mut p, 0, 4096);
    }

    #[test]
    #[should_panic(expected = "out of range (1..=4096)")]
    fn format_rejects_too_many_threads() {
        let mut p = pool();
        let _ = PoolLayout::format(&mut p, PoolLayout::MAX_THREADS + 1, 4096);
    }

    #[test]
    #[should_panic(expected = "out of range (layout has 4)")]
    fn head_addr_bounds_checked() {
        let mut p = pool();
        let l = PoolLayout::format(&mut p, 4, 4096);
        let _ = l.head_addr(4);
    }

    #[test]
    fn shared_format_matches_sequential() {
        let dev = specpmt_pmem::SharedPmemDevice::new(PmemConfig::new(1 << 20));
        let p = SharedPmemPool::create(dev);
        let l = PoolLayout::format_shared(&p, 32, 512);
        l.set_head_shared(&p, 31, 0x2222);
        let img = p.device().capture(CrashPolicy::AllLost);
        let back = PoolLayout::read(&img).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.head(&img, 31), 0x2222);
    }

    #[test]
    fn ckpt_head_round_trips_and_survives_growth() {
        let dev = specpmt_pmem::SharedPmemDevice::new(PmemConfig::new(1 << 20));
        let p = SharedPmemPool::create(dev);
        let l = PoolLayout::format_shared(&p, 2, 512);
        l.set_head_shared(&p, 1, 0x3333);
        l.set_ckpt_head_shared(&p, 0x4444);
        assert_eq!(l.ckpt_head(&p.handle()), 0x4444);
        let grown = l.grow_shared(&p, 9);
        assert!(grown.threads() >= 9);
        assert_eq!(grown.block_bytes(), l.block_bytes());
        assert_ne!(grown.desc_base(), l.desc_base());
        // Mutable tail carried over, and a crash image parses the *new*
        // descriptor from the swapped root.
        let img = p.device().capture(CrashPolicy::AllLost);
        let back = PoolLayout::read(&img).unwrap();
        assert_eq!(back, grown);
        assert_eq!(back.head(&img, 1), 0x3333);
        assert_eq!(back.ckpt_head(&img), 0x4444);
        assert_eq!(back.head(&img, 8), 0, "new slots start empty");
    }

    #[test]
    fn growth_is_idempotent_below_capacity() {
        let dev = specpmt_pmem::SharedPmemDevice::new(PmemConfig::new(1 << 20));
        let p = SharedPmemPool::create(dev);
        let l = PoolLayout::format_shared(&p, 8, 512);
        let same = l.grow_shared(&p, 4);
        assert_eq!(same, l, "no growth needed, no new descriptor");
    }
}
