//! Software SpecPMT: speculatively persistent memory transactions.
//!
//! This crate implements the paper's primary contribution in its
//! software-only form (Section 4): a persistent transaction runtime that
//! logs the **new** value of every durable update (*speculative logging*),
//! persists the whole transaction's log with a **single** flush+fence at
//! commit, and never flushes the data itself — the log doubles as a redo
//! log for committed transactions and an undo log for interrupted ones.
//!
//! The moving parts:
//!
//! * [`record`] — the on-PM log format: chained log blocks holding
//!   chronologically ordered records `[len | ts | checksum | entries…]`.
//!   The checksum doubles as the commit flag (a torn record fails
//!   validation and is treated as uncommitted), eliminating the dedicated
//!   commit-status write and fence.
//! * [`SpecSpmt`] — the runtime: per-thread append-only log areas,
//!   write-set indexing that dedups repeated updates inside a transaction,
//!   transactional allocation, and the `SpecSPMT-DP` variant
//!   ([`SpecConfig::data_persistence`]) that additionally persists data at
//!   commit, used by the paper to isolate where the speedup comes from.
//! * [`recovery`] — post-crash repair: discard uncommitted records
//!   (checksum mismatch), then replay every valid record across all
//!   threads in commit-timestamp order (undoing interrupted transactions
//!   and redoing committed ones).
//! * [`reclaim`] — log reclamation and compaction: a byte-granular
//!   freshness index finds records fully covered by younger records and
//!   rewrites each thread's chain without them, splicing the new chain in
//!   with the paper's two-fence protocol. Runs in background mode
//!   (dedicated core — time excluded, traffic counted) or inline (for the
//!   ablation benchmark).
//! * [`hashlog`] — the paper's strawman alternative (one log slot per
//!   datum located by hashing, Section 4): space-efficient but with random
//!   PM write locality; reproduced for the "3.2× slower" micro-experiment.
//!
//! # Quick example
//!
//! ```
//! use specpmt_core::{SpecConfig, SpecSpmt};
//! use specpmt_pmem::{PmemConfig, PmemDevice, PmemPool};
//! use specpmt_txn::{Recover, TxAccess, TxRuntime};
//!
//! let pool = PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 20)));
//! let mut rt = SpecSpmt::new(pool, SpecConfig::default());
//! let slot = rt.pool_mut().alloc_direct(8, 8)?;
//!
//! rt.begin();
//! rt.write_u64(slot, 7);
//! rt.commit();
//!
//! // Crash with *nothing* evicted from the cache: the datum itself never
//! // reached PM, but recovery replays it from the speculative log.
//! use specpmt_pmem::CrashControl;
//! let mut img = rt.pool().device().capture(specpmt_pmem::CrashPolicy::AllLost);
//! SpecSpmt::recover(&mut img);
//! assert_eq!(img.read_u64(slot), 7);
//! # Ok::<(), specpmt_pmem::PmemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checksum;
pub mod concurrent;
pub mod crashsmoke;
pub mod hashlog;
pub mod inspect;
pub mod layout;
pub mod locked;
pub mod reclaim;
pub mod record;
pub mod recovery;
mod runtime;
pub mod writeset;

pub use specpmt_telemetry::knobs;

pub use checksum::{fnv1a64, fnv1a64_reference, Fnv1a};
pub use concurrent::{
    ConcurrentConfig, ConcurrentConfigBuilder, GroupCombinerDaemon, PoolSource, ReclaimDaemon,
    SharedStats, SpecSpmtShared, TxHandle,
};
pub use crashsmoke::{run_mt_smoke, run_seq_smoke, run_seq_smoke_with_image};
pub use hashlog::{HashLogConfig, HashLogSpmt};
pub use inspect::{inspect_image, ChainSummary, InspectReport};
pub use layout::{
    PoolLayout, BLOCK_BYTES_SLOT, LAYOUT_SLOT, LEGACY_CHAIN_SLOTS, LOG_HEAD_SLOT_BASE,
};
pub use locked::LockedTxHandle;
pub use reclaim::{FreshnessIndex, ReclaimState, ReclaimStats};
pub use record::{encode_checkpoint, parse_checkpoint, CheckpointRecord};
pub use recovery::{
    forensics, recover_image_opts, ForensicInFlight, ForensicReport, ForensicViolation,
    RecoveryOptions, RecoveryReport,
};
pub use runtime::{ReclaimMode, SpecConfig, SpecSpmt};
pub use writeset::{EntrySlot, WriteSet};
