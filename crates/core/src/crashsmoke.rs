//! Canonical enumeration smoke workloads.
//!
//! The crash-point enumerator ([`specpmt_txn::crashenum`]) is generic over
//! a *runner* closure; this module provides the two runners the repo's
//! smoke tier drives — one per runtime — sized so that together they reach
//! **every** labeled crash site in [`specpmt_pmem::sites`]:
//!
//! * [`run_seq_smoke`] — [`SpecSpmt`] with small log blocks, a tiny
//!   reclamation threshold, and inline reclamation, so a short random
//!   stream walks the full commit sequence (`seq/commit/*`), repeated
//!   compaction cycles (`seq/reclaim/*`), and the layout head-pointer
//!   writes (`layout/*`).
//! * [`run_mt_smoke`] — [`SpecSpmtShared`] on four real threads with a
//!   post-run compaction cycle and a checkpoint write, covering
//!   `mt/commit/*` (group commit off) or `mt/group/*` (group commit on)
//!   plus `mt/reclaim/*` and `ckpt/*`. Run it once per group-commit
//!   setting and [`EnumReport::merge`] the reports to cover both commit
//!   paths.
//!
//! Both runners execute the workload **fresh** (new device, pool, and
//! runtime per call), recover from the captured image, and verify atomic
//! durability, which is exactly the contract [`enumerate`] expects. They
//! also recover every image twice — once with the serial reference
//! replay, once with parallel parsing plus checkpoint-bounded replay —
//! and assert the two images are bit-identical, so each enumerated crash
//! case doubles as an equivalence check for the optimized recovery path.
//!
//! [`EnumReport::merge`]: specpmt_txn::EnumReport::merge
//! [`enumerate`]: specpmt_txn::enumerate

use specpmt_pmem::{
    CrashControl, CrashImage, CrashPlan, CrashPolicy, PmemConfig, SharedPmemDevice,
};
use specpmt_txn::driver::{
    fresh_pool_with_region, generate_stream, run_crash_scenario, verify_recovered, StreamSpec,
};
use specpmt_txn::{Recover, RunSummary, TxAccess, TxRuntime};

use crate::recovery::RecoveryOptions;
use crate::{ConcurrentConfig, ReclaimMode, SpecConfig, SpecSpmt, SpecSpmtShared, TxHandle};

/// Recovers `image` through the serial reference path, then recovers a
/// pristine clone through parallel parsing + checkpoint-bounded replay
/// and asserts bit-identity — the acceptance contract that the optimized
/// recovery is equivalent on *every* enumerated crash case.
///
/// Every image also runs through [`crate::recovery::forensics`]: the
/// decode must never fail (torn ring slots degrade to counts), the
/// receipt-ahead-of-durability check must come back clean, and the event
/// record must be consistent with what recovery reported. That makes each
/// enumerated crash case double as a black-box soundness check.
fn recover_and_check_equivalence(image: &mut CrashImage) -> crate::recovery::RecoveryReport {
    let mut optimized = image.clone();
    SpecSpmt::recover(image);
    let report = crate::recovery::recover_image_opts(&mut optimized, &RecoveryOptions::parallel(4));
    assert_eq!(
        *image, optimized,
        "parallel/checkpointed recovery diverged from the serial reference"
    );
    let fx = crate::recovery::forensics(image);
    assert!(
        fx.is_clean(),
        "forensic violations on a correct runtime: {:?}\n{fx}\n{}",
        fx.violations,
        crate::inspect::inspect_image(image),
    );
    let issues = fx.check_against(&report);
    assert!(issues.is_empty(), "forensics inconsistent with recovery: {issues:?}\n{fx}");
    report
}

/// Region bytes of the sequential smoke stream.
const SEQ_REGION: usize = 64;

/// Threads driven by the multi-threaded smoke workload.
pub const MT_THREADS: usize = 4;
/// Transactions each multi-threaded smoke thread commits.
pub const MT_TXS: usize = 6;
const MT_REGION: usize = 128;

/// Runs the sequential smoke workload with `plan` armed and returns the
/// run summary plus the recovered crash image (for bit-exact replay
/// checks).
///
/// The workload is fully deterministic: a fixed-seed 40-transaction stream
/// over a 64-byte region on a [`SpecSpmt`] with 256-byte log blocks and
/// inline reclamation above a 1 KiB footprint, so compaction (and its
/// splice into the layout head slots) happens many times mid-stream.
///
/// # Errors
///
/// Returns the first atomic-durability violation found in the recovered
/// image.
pub fn run_seq_smoke_with_image(plan: CrashPlan) -> Result<(RunSummary, CrashImage), String> {
    let (pool, base) = fresh_pool_with_region(1 << 19, SEQ_REGION);
    let mut rt = SpecSpmt::new(
        pool,
        SpecConfig {
            block_bytes: 256,
            reclaim_threshold_bytes: 1024,
            reclaim_mode: ReclaimMode::Inline,
            ..SpecConfig::default()
        },
    );
    // External-data protocol: one committed snapshot of zeros first.
    let zeros = vec![0u8; SEQ_REGION];
    rt.begin();
    rt.write(base, &zeros);
    rt.commit();

    let stream = generate_stream(&StreamSpec {
        txs: 40,
        max_writes_per_tx: 4,
        max_write_len: 8,
        region_len: SEQ_REGION,
        seed: 0xC0DE,
    });
    let mut outcome = run_crash_scenario(&mut rt, base, &stream, plan);
    let fired = outcome.image.is_some();
    let summary =
        RunSummary { fired, fired_at: outcome.fired_at, site_hits: outcome.site_hits.clone() };
    let mut image = match outcome.image.take() {
        Some(img) => img,
        None => {
            rt.close();
            rt.pool().device().capture(CrashPolicy::AllLost)
        }
    };
    recover_and_check_equivalence(&mut image);
    verify_recovered(&outcome, &image)?;
    Ok((summary, image))
}

/// [`run_seq_smoke_with_image`] without the image — the exact shape
/// [`enumerate`](specpmt_txn::enumerate) wants.
///
/// # Errors
///
/// Returns the first atomic-durability violation found in the recovered
/// image.
pub fn run_seq_smoke(plan: CrashPlan) -> Result<RunSummary, String> {
    run_seq_smoke_with_image(plan).map(|(summary, _)| summary)
}

/// The monotone value thread `t`'s `k`-th transaction writes (1-based
/// `k`); recovery checks rest on the values increasing within a thread.
fn mt_value(t: usize, k: usize) -> u64 {
    ((t as u64 + 1) << 32) | k as u64
}

/// Runs the multi-threaded smoke workload with `plan` armed.
///
/// [`MT_THREADS`] real threads each commit [`MT_TXS`] transactions into a
/// disjoint region; every transaction writes the same *pair* of words
/// (base and base+64), so a torn pair after recovery is an atomicity
/// violation and the pair value must be at least the thread's last
/// definitely-committed transaction (crash-epoch bracketing classifies
/// definite commits). After the threads join, one [`SpecSpmtShared::
/// reclaim_cycle`] compacts the churned chains, deterministically walking
/// the `mt/reclaim/*` splice protocol.
///
/// With `group_commit` the commits funnel through the batched-fence group
/// path (`mt/group/*` sites); without it each commit seals solo
/// (`mt/commit/flush`, `mt/commit/fence`).
///
/// # Errors
///
/// Returns the first torn pair or lost definitely-committed transaction
/// found in the recovered image.
pub fn run_mt_smoke(plan: CrashPlan, group_commit: bool) -> Result<RunSummary, String> {
    let dev = SharedPmemDevice::new(PmemConfig::new(1 << 22));
    // The flight recorder runs with a deliberately tiny ring so the smoke
    // stream wraps every ring, covering the `bbox/*` sites and the
    // overwrite path in one enumeration.
    let cfg = ConcurrentConfig::builder()
        .threads(MT_THREADS)
        .group_commit(group_commit)
        .reclaim_threshold_bytes(1024)
        .flight_recorder(true)
        .bbox_capacity(32)
        .build();
    let shared = SpecSpmtShared::open_or_format(dev.clone(), cfg);
    let bases: Vec<usize> = (0..MT_THREADS)
        .map(|_| shared.pool().alloc_direct(MT_REGION, 64).expect("pool holds all regions"))
        .collect();
    let mut handles: Vec<TxHandle> = (0..MT_THREADS).map(|t| shared.tx_handle(t)).collect();

    // Committed snapshot of zeros per region before the crash is armed.
    let zeros = vec![0u8; MT_REGION];
    for (h, &base) in handles.iter_mut().zip(&bases) {
        h.begin();
        h.write(base, &zeros);
        h.commit();
    }

    dev.arm(plan);
    let definite: Vec<usize> = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for (t, (mut h, &base)) in handles.into_iter().zip(&bases).enumerate() {
            let dev = dev.clone();
            workers.push(scope.spawn(move || {
                let mut last_definite = 0usize;
                for k in 1..=MT_TXS {
                    let (e0, f0) = dev.observe();
                    if f0 {
                        break; // image frozen: later commits cannot be in it
                    }
                    let v = mt_value(t, k).to_le_bytes();
                    h.begin();
                    h.write(base, &v);
                    h.write(base + 64, &v);
                    h.commit();
                    let (e1, _) = dev.observe();
                    if e0 % 2 == 0 && e1 == e0 {
                        last_definite = k;
                    } else {
                        break; // boundary commit: all-or-nothing from here
                    }
                }
                last_definite
            }));
        }
        workers.into_iter().map(|w| w.join().expect("worker panicked")).collect()
    });

    // Each chain now holds MT_TXS-fold churn on two words: one compaction
    // cycle rewrites every chain through the two-fence splice.
    shared.reclaim_cycle();
    // One checkpoint write walks the ckpt/* splice protocol; recovery of
    // the captured image then exercises checkpoint-bounded replay (or its
    // torn-checkpoint fallback, when the crash lands mid-protocol).
    shared.write_checkpoint();

    let summary =
        RunSummary { fired: dev.fired(), fired_at: dev.fired_at(), site_hits: dev.site_hits() };
    let mut image = match dev.take_image() {
        Some(img) => img,
        None => {
            dev.flush_everything();
            dev.capture(CrashPolicy::AllLost)
        }
    };
    recover_and_check_equivalence(&mut image);
    // The recorder was formatted before the crash armed, so the region
    // must decode on every enumerated image.
    let fx = crate::recovery::forensics(&image);
    assert!(fx.recorder_present, "flight-recorder region missing from the mt crash image");

    for (t, (&base, &last_definite)) in bases.iter().zip(&definite).enumerate() {
        let (a, b) = (image.read_u64(base), image.read_u64(base + 64));
        if a != b {
            return Err(format!("thread {t}: torn pair {a:#x} / {b:#x} after recovery"));
        }
        let floor = if last_definite == 0 { 0 } else { mt_value(t, last_definite) };
        if a < floor {
            return Err(format!(
                "thread {t}: definitely-committed tx {last_definite} lost \
                 (recovered {a:#x} < {floor:#x})"
            ));
        }
        if a != 0 && a > mt_value(t, MT_TXS) {
            return Err(format!("thread {t}: recovered value {a:#x} was never written"));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::sites;
    use specpmt_txn::{enumerate, EnumConfig, EnumReport};

    #[test]
    fn seq_smoke_enumerates_every_seq_and_layout_site() {
        let cfg = EnumConfig::new("cargo test -p specpmt-core crashsmoke");
        let report = enumerate(&cfg, run_seq_smoke).expect("observe pass");
        assert!(report.passed(), "failures:\n{}", report.failure_lines().join("\n"));
        // Single-threaded determinism: every targeted case fires.
        assert_eq!(report.fired_cases(), report.cases.len());
        let unvisited = report.unvisited(&["seq-commit", "seq-reclaim", "layout"]);
        assert!(unvisited.is_empty(), "unvisited labeled sites: {unvisited:?}");
    }

    #[test]
    fn mt_smoke_enumerates_every_mt_site_across_both_commit_paths() {
        let cfg = EnumConfig::new("cargo test -p specpmt-core crashsmoke");
        let mut merged = EnumReport::default();
        for group in [false, true] {
            let report = enumerate(&cfg, |plan| run_mt_smoke(plan, group)).expect("observe pass");
            assert!(
                report.passed(),
                "group={group} failures:\n{}",
                report.failure_lines().join("\n")
            );
            merged.merge(report);
        }
        let unvisited =
            merged.unvisited(&["mt-commit", "mt-group", "mt-reclaim", "ckpt", "layout"]);
        assert!(unvisited.is_empty(), "unvisited labeled sites: {unvisited:?}");
    }

    #[test]
    fn smoke_workloads_cover_the_entire_site_inventory() {
        // The zero-unvisited-labels acceptance check: merged across the
        // smoke workloads, every site in the inventory is reachable.
        let cfg = EnumConfig { max_hits_per_site: 0, ..EnumConfig::new("inventory") };
        let mut merged = EnumReport::default();
        merged.merge(enumerate(&cfg, run_seq_smoke).expect("seq observe"));
        for group in [false, true] {
            merged.merge(enumerate(&cfg, |plan| run_mt_smoke(plan, group)).expect("mt observe"));
        }
        let all: Vec<&str> = sites::ALL.iter().map(|s| s.subsystem).collect();
        let unvisited = merged.unvisited(&all);
        assert!(unvisited.is_empty(), "unvisited labeled sites: {unvisited:?}");
    }

    #[test]
    fn env_crash_target_replays_on_the_smoke_workloads() {
        // This is where the enumerator's printed repro command lands:
        // `SPECPMT_CRASH_TARGET=<site>:<hit> cargo test -p specpmt-core
        // crashsmoke` replays that exact crash on whichever smoke workload
        // reaches the site. Unset, the test drives the same path with a
        // default sequential target so it never silently no-ops.
        let (site, hit) = match &crate::knobs::Knobs::get().crash_target {
            Some((site, hit)) => (site.clone(), *hit),
            None => ("seq/commit/fence".to_string(), 1),
        };
        let plan = CrashPlan::parse_target(&format!("{site}:{hit}"))
            .unwrap_or_else(|e| panic!("SPECPMT_CRASH_TARGET rejected: {e}"));
        let canonical = sites::lookup(&site).expect("validated by parse_target");
        let summary = match canonical.subsystem {
            "mt-group" | "bbox" => run_mt_smoke(plan, true),
            s if s.starts_with("mt-") || s == "ckpt" => run_mt_smoke(plan, false),
            _ => run_seq_smoke(plan),
        }
        .unwrap_or_else(|e| panic!("targeted crash at {site}:{hit} broke recovery: {e}"));
        // MT targets can race past the crash point (the run then verified
        // an orderly shutdown instead); whenever the crash fired, it must
        // have fired exactly where the target said.
        if summary.fired {
            assert_eq!(summary.fired_at, Some((canonical.name, hit)));
        } else {
            assert!(
                canonical.name.starts_with("mt/") || canonical.name.starts_with("bbox/"),
                "seq targets are deterministic"
            );
        }
    }

    #[test]
    fn targeted_seq_replay_is_bit_identical() {
        // Exact-repro contract: enumerate, pick a covered site, re-run via
        // a parsed SPECPMT_CRASH_TARGET-style plan, and the crash image is
        // bit-identical with the same (site, hit).
        let cfg = EnumConfig::new("replay");
        let report = enumerate(&cfg, run_seq_smoke).expect("observe pass");
        let (site, hits) = *report
            .discovered
            .iter()
            .find(|(s, _)| *s == "seq/commit/fence")
            .expect("commit fence is reachable");
        let hit = hits.min(3);
        let plan = CrashPlan::parse_target(&format!("{site}:{hit}")).expect("parsable target");
        let (s1, img1) = run_seq_smoke_with_image(plan).expect("first replay");
        let (s2, img2) = run_seq_smoke_with_image(plan).expect("second replay");
        assert_eq!(s1.fired_at, Some((site, hit)));
        assert_eq!(s2.fired_at, Some((site, hit)));
        assert_eq!(img1, img2, "replayed crash images diverged");
    }
}
