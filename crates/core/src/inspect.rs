//! Log inspection: an `fsck`-style view of a pool or crash image.
//!
//! Operators of a persistent-memory system need to answer "what is in this
//! pool?" after a crash — how many committed records each thread's chain
//! holds, what timestamp range they span, how much space the log occupies,
//! and whether the chain terminates cleanly. [`inspect_image`] produces
//! that summary from any [`CrashImage`]; `examples/log_inspect.rs` shows
//! the rendered report.

use std::fmt;

use specpmt_pmem::{root_off, CrashImage, POOL_MAGIC};
use specpmt_telemetry::{JsonWriter, StatExport};

use crate::layout::{PoolLayout, BLOCK_BYTES_SLOT};
use crate::reclaim::FreshnessIndex;
use crate::record::{parse_chain, REC_HDR};

/// Summary of one thread's (or epoch's) log chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSummary {
    /// Thread (chain) index the head was read from — a root-slot-relative
    /// index on legacy pools, a head-table index on dynamic layouts.
    pub tid: usize,
    /// Head block offset.
    pub head: usize,
    /// Committed (checksum-valid) records.
    pub records: usize,
    /// Total entries across records.
    pub entries: usize,
    /// Total payload bytes across records.
    pub payload_bytes: usize,
    /// Entries fully overwritten by younger committed records (any chain):
    /// a reclamation cycle would drop them.
    pub stale_entries: usize,
    /// Log bytes (record headers + payload) a reclamation cycle would
    /// reclaim from this chain, per the same [`FreshnessIndex`] the
    /// reclamator itself uses.
    pub reclaimable_bytes: usize,
    /// Commit-timestamp range (min, max), if any records exist.
    pub ts_range: Option<(u64, u64)>,
}

/// Whole-image inspection report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InspectReport {
    /// Whether the pool magic validated.
    pub valid_pool: bool,
    /// Persistent bump pointer (heap high-water).
    pub heap_bump: u64,
    /// Log block size from the layout (or raw metadata slot if no layout
    /// parsed; 0 if absent).
    pub block_bytes: usize,
    /// Thread count the pool was formatted for (0 when no layout parsed).
    pub threads: usize,
    /// `true` when the pool carries a dynamic layout descriptor (vs the
    /// legacy fixed root slots).
    pub dynamic_layout: bool,
    /// Per-chain summaries (only threads with non-zero heads).
    pub chains: Vec<ChainSummary>,
}

impl InspectReport {
    /// Total committed records across all chains.
    pub fn total_records(&self) -> usize {
        self.chains.iter().map(|c| c.records).sum()
    }

    /// Total stale (fully overwritten) entries across all chains.
    pub fn total_stale_entries(&self) -> usize {
        self.chains.iter().map(|c| c.stale_entries).sum()
    }

    /// Total log bytes a reclamation cycle would reclaim across all
    /// chains.
    pub fn total_reclaimable_bytes(&self) -> usize {
        self.chains.iter().map(|c| c.reclaimable_bytes).sum()
    }

    /// Global commit-timestamp range, if any records exist.
    pub fn ts_range(&self) -> Option<(u64, u64)> {
        let mut out: Option<(u64, u64)> = None;
        for c in &self.chains {
            if let Some((lo, hi)) = c.ts_range {
                out = Some(match out {
                    None => (lo, hi),
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                });
            }
        }
        out
    }
}

impl StatExport for InspectReport {
    fn export_name(&self) -> &'static str {
        "inspect"
    }

    /// Emits the machine-readable counterpart of the [`fmt::Display`]
    /// report: pool validity and geometry, per-chain record/entry/stale/
    /// reclaimable counts (with timestamp ranges), and the same global
    /// totals — one schema shared by `examples/log_inspect.rs --json`,
    /// tests, and any external tooling.
    fn emit(&self, w: &mut JsonWriter) {
        w.field_bool("valid_pool", self.valid_pool);
        w.field_u64("heap_bump", self.heap_bump);
        w.field_u64("block_bytes", self.block_bytes as u64);
        w.field_u64("threads", self.threads as u64);
        w.field_bool("dynamic_layout", self.dynamic_layout);
        w.begin_array_field("chains");
        for c in &self.chains {
            w.begin_object();
            w.field_u64("tid", c.tid as u64);
            w.field_u64("head", c.head as u64);
            w.field_u64("records", c.records as u64);
            w.field_u64("entries", c.entries as u64);
            w.field_u64("payload_bytes", c.payload_bytes as u64);
            w.field_u64("stale_entries", c.stale_entries as u64);
            w.field_u64("reclaimable_bytes", c.reclaimable_bytes as u64);
            if let Some((lo, hi)) = c.ts_range {
                w.field_u64("ts_min", lo);
                w.field_u64("ts_max", hi);
            }
            w.end_object();
        }
        w.end_array();
        w.field_u64("total_records", self.total_records() as u64);
        w.field_u64("total_stale_entries", self.total_stale_entries() as u64);
        w.field_u64("total_reclaimable_bytes", self.total_reclaimable_bytes() as u64);
        if let Some((lo, hi)) = self.ts_range() {
            w.field_u64("ts_min", lo);
            w.field_u64("ts_max", hi);
        }
    }
}

impl fmt::Display for InspectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pool:        {}", if self.valid_pool { "valid" } else { "INVALID MAGIC" })?;
        writeln!(f, "heap bump:   {:#x}", self.heap_bump)?;
        writeln!(f, "block size:  {} bytes", self.block_bytes)?;
        writeln!(
            f,
            "layout:      {} ({} threads)",
            if self.dynamic_layout { "dynamic descriptor" } else { "legacy root slots" },
            self.threads
        )?;
        writeln!(f, "chains:      {}", self.chains.len())?;
        for c in &self.chains {
            write!(
                f,
                "  tid {:2}: head {:#8x}  {:4} records  {:5} entries  {:7} payload bytes  \
                 {:4} stale  {:6} reclaimable",
                c.tid,
                c.head,
                c.records,
                c.entries,
                c.payload_bytes,
                c.stale_entries,
                c.reclaimable_bytes
            )?;
            match c.ts_range {
                Some((lo, hi)) => writeln!(f, "  ts {lo}..={hi}")?,
                None => writeln!(f, "  (empty)")?,
            }
        }
        match self.ts_range() {
            Some((lo, hi)) => writeln!(f, "global ts:   {lo}..={hi}")?,
            None => writeln!(f, "global ts:   (no committed records)")?,
        }
        writeln!(
            f,
            "reclaimable: {} bytes across {} stale entries",
            self.total_reclaimable_bytes(),
            self.total_stale_entries()
        )
    }
}

/// Inspects a crash image (or a live pool's image) without modifying it.
///
/// The pool's [`PoolLayout`] (dynamic descriptor or legacy fixed root
/// slots) determines where chain heads are read from. A valid pool whose
/// layout does not parse (e.g. no runtime metadata yet) reports the raw
/// [`BLOCK_BYTES_SLOT`] contents and no chains.
pub fn inspect_image(image: &CrashImage) -> InspectReport {
    let valid_pool =
        image.len() >= specpmt_pmem::POOL_HEADER_SIZE && image.read_u64(0) == POOL_MAGIC;
    if !valid_pool {
        return InspectReport {
            valid_pool,
            heap_bump: 0,
            block_bytes: 0,
            threads: 0,
            dynamic_layout: false,
            chains: Vec::new(),
        };
    }
    let heap_bump = image.read_u64(specpmt_pmem::BUMP_OFF);
    let Some(layout) = PoolLayout::read(image) else {
        let block_bytes = image.read_u64(root_off(BLOCK_BYTES_SLOT)) as usize;
        return InspectReport {
            valid_pool,
            heap_bump,
            block_bytes,
            threads: 0,
            dynamic_layout: false,
            chains: Vec::new(),
        };
    };
    // Two passes: parse every chain first so the freshness index sees all
    // committed records (staleness is a *global* property — a byte written
    // by thread 0 may be overwritten by thread 3), then summarize each
    // chain against the full index, exactly as a reclamation cycle would.
    let mut parsed = Vec::new();
    for tid in 0..layout.threads() {
        let head = layout.head(image, tid);
        if head == 0 {
            continue;
        }
        parsed.push((tid, head, parse_chain(image, head, layout.block_bytes())));
    }
    let index = FreshnessIndex::build(parsed.iter().flat_map(|(_, _, recs)| recs.iter()));
    let mut chains = Vec::new();
    for (tid, head, records) in parsed {
        let entries = records.iter().map(|r| r.entries.len()).sum();
        let payload_bytes = records.iter().map(|r| r.payload_len()).sum();
        let mut stale_entries = 0usize;
        let mut reclaimable_bytes = 0usize;
        for rec in &records {
            let before = REC_HDR + rec.payload_len();
            let (kept, dropped) = index.compact_record(rec);
            stale_entries += dropped as usize;
            reclaimable_bytes += match kept {
                Some(k) => before - (REC_HDR + k.payload_len()),
                None => before,
            };
        }
        let ts_range = records.iter().map(|r| r.ts).fold(None, |acc: Option<(u64, u64)>, ts| {
            Some(match acc {
                None => (ts, ts),
                Some((lo, hi)) => (lo.min(ts), hi.max(ts)),
            })
        });
        chains.push(ChainSummary {
            tid,
            head,
            records: records.len(),
            entries,
            payload_bytes,
            stale_entries,
            reclaimable_bytes,
            ts_range,
        });
    }
    InspectReport {
        valid_pool,
        heap_bump,
        block_bytes: layout.block_bytes(),
        threads: layout.threads(),
        dynamic_layout: layout.is_dynamic(),
        chains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpecConfig, SpecSpmt};
    use specpmt_pmem::CrashControl;
    use specpmt_pmem::{CrashPolicy, PmemConfig, PmemDevice, PmemPool};
    use specpmt_txn::{TxAccess, TxRuntime};

    #[test]
    fn inspect_reports_committed_records() {
        let pool = PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 20)));
        let mut rt = SpecSpmt::new(pool, SpecConfig { threads: 2, ..SpecConfig::default() });
        let a = rt.pool_mut().alloc_direct(64, 64).unwrap();
        for tid in 0..2 {
            rt.set_thread(tid);
            for v in 0..5u64 {
                rt.begin();
                rt.write_u64(a, v);
                rt.commit();
            }
        }
        let img = rt.pool().device().capture(CrashPolicy::AllSurvive);
        let report = inspect_image(&img);
        assert!(report.valid_pool);
        assert!(report.dynamic_layout);
        assert_eq!(report.threads, 2);
        assert_eq!(report.chains.len(), 2);
        assert_eq!(report.total_records(), 10);
        assert_eq!(report.ts_range(), Some((1, 10)));
        // Both threads hammer the same u64: only the globally youngest
        // record (tid 1's last commit) is fresh; the other 9 entries are
        // reclaimable — and staleness crosses chains (all of tid 0's
        // entries are stale because tid 1 overwrote them).
        assert_eq!(report.total_stale_entries(), 9);
        assert_eq!(report.chains[0].stale_entries, 5);
        assert_eq!(report.chains[1].stale_entries, 4);
        assert!(report.total_reclaimable_bytes() > 0);
        let rendered = report.to_string();
        assert!(rendered.contains("10") || rendered.contains("records"));
        assert!(rendered.contains("dynamic descriptor"));
        assert!(rendered.contains("reclaimable"));
    }

    #[test]
    fn inspect_sees_all_chains_past_legacy_cap() {
        let pool = PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 22)));
        let mut rt = SpecSpmt::new(pool, SpecConfig { threads: 17, ..SpecConfig::default() });
        let a = rt.pool_mut().alloc_direct(17 * 8, 64).unwrap();
        for tid in 0..17 {
            rt.set_thread(tid);
            rt.begin();
            rt.write_u64(a + tid * 8, tid as u64);
            rt.commit();
        }
        let img = rt.pool().device().capture(CrashPolicy::AllSurvive);
        let report = inspect_image(&img);
        assert_eq!(report.threads, 17);
        assert_eq!(report.chains.len(), 17);
        assert_eq!(report.total_records(), 17);
        assert_eq!(report.chains[16].tid, 16);
    }

    #[test]
    fn inspect_json_mirrors_display_totals() {
        let pool = PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 20)));
        let mut rt = SpecSpmt::new(pool, SpecConfig { threads: 2, ..SpecConfig::default() });
        let a = rt.pool_mut().alloc_direct(64, 64).unwrap();
        for tid in 0..2 {
            rt.set_thread(tid);
            for v in 0..5u64 {
                rt.begin();
                rt.write_u64(a, v);
                rt.commit();
            }
        }
        let img = rt.pool().device().capture(CrashPolicy::AllSurvive);
        let report = inspect_image(&img);
        let j = report.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"valid_pool\":true"), "{j}");
        assert!(j.contains("\"dynamic_layout\":true"), "{j}");
        assert!(j.contains("\"total_records\":10"), "{j}");
        assert!(j.contains("\"total_stale_entries\":9"), "{j}");
        assert!(j.contains("\"chains\":["), "{j}");
        assert!(j.contains("\"stale_entries\":5"), "{j}");
        assert!(j.contains("\"ts_min\":1"), "{j}");
        assert!(j.contains("\"ts_max\":10"), "{j}");
        // Per-chain reclaimable must sum to the global total.
        let per_chain: usize = report.chains.iter().map(|c| c.reclaimable_bytes).sum();
        assert_eq!(per_chain, report.total_reclaimable_bytes());
    }

    #[test]
    fn inspect_rejects_garbage() {
        let img = CrashImage::new(vec![0xAB; 4096]);
        let report = inspect_image(&img);
        assert!(!report.valid_pool);
        assert!(report.chains.is_empty());
        assert!(report.to_string().contains("INVALID"));
    }

    #[test]
    fn open_transaction_is_not_counted() {
        let pool = PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 20)));
        let mut rt = SpecSpmt::new(pool, SpecConfig::default());
        let a = rt.pool_mut().alloc_direct(64, 64).unwrap();
        rt.begin();
        rt.write_u64(a, 1);
        rt.commit();
        rt.begin();
        rt.write_u64(a, 2); // open, uncommitted
        let img = rt.pool().device().capture(CrashPolicy::AllSurvive);
        let report = inspect_image(&img);
        assert_eq!(report.total_records(), 1, "uncommitted record must not count");
    }
}
