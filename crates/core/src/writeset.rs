//! Zero-allocation transaction write set.
//!
//! The original runtime kept, per transaction, a fresh
//! `HashMap<usize, EntrySlot>` for write-set indexing plus a `Vec<u8>`
//! payload staging buffer — both allocated (and the map re-hashed with a
//! SipHash-grade hasher) on every transaction. At the paper's transaction
//! sizes (a handful of small writes) the allocator and hasher dominate the
//! instruction count of `begin`/`write`.
//!
//! [`WriteSet`] replaces both with structures that are **owned by the
//! runtime and reused across transactions**:
//!
//! * an open-addressing index (linear probing, Fibonacci hashing) whose
//!   slots carry a *stamp*: `begin()` bumps the stamp instead of zeroing
//!   the table, so clearing is O(1) and the table's capacity — grown to
//!   the high-water mark of any past transaction — is never released;
//! * a payload arena (`Vec<u8>`) that is `clear()`ed, not freed, so its
//!   capacity is likewise sticky;
//! * a streaming [`Fnv1a`] hasher fed *as entries are staged*, so sealing
//!   the record does not re-walk the payload. In-place patches (the
//!   same-address-same-length dedup path) poison the stream
//!   (`hash_dirty`); [`WriteSet::checksum`] then falls back to one
//!   re-stream of the final payload — still allocation-free.
//!
//! After warm-up, a committed transaction performs **zero** heap
//! allocations in this layer (the commit-path microbench asserts this via
//! a counting global allocator).

use crate::checksum::Fnv1a;
use crate::record::{self, Cursor, ENTRY_HDR};

/// Where one staged entry lives, for the in-transaction dedup path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntrySlot {
    /// Offset of the entry's *value* bytes inside the payload arena.
    pub payload_off: usize,
    /// Value length in bytes.
    pub len: usize,
    /// Log-chain cursor of the value bytes (for write-through patching).
    pub value_cursor: Cursor,
}

/// One index slot. `stamp` ties the slot to the transaction that wrote
/// it; slots from older transactions are treated as empty.
#[derive(Debug, Clone, Copy)]
struct Slot {
    addr: usize,
    stamp: u64,
    entry: EntrySlot,
}

const EMPTY_SLOT: Slot = Slot {
    addr: 0,
    stamp: 0,
    entry: EntrySlot { payload_off: 0, len: 0, value_cursor: Cursor { block: 0, pos: 0 } },
};

/// Reusable write-set: open-addressing index + payload arena + streaming
/// record checksum. See the module docs for the design rationale.
#[derive(Debug)]
pub struct WriteSet {
    slots: Vec<Slot>,
    /// `64 - log2(slots.len())`, for Fibonacci hashing.
    shift: u32,
    mask: usize,
    /// Live entries in the *current* transaction.
    live: usize,
    /// Current transaction stamp; slots with an older stamp are empty.
    stamp: u64,
    payload: Vec<u8>,
    hasher: Fnv1a,
    hash_dirty: bool,
}

const INITIAL_SLOTS: usize = 16;

impl Default for WriteSet {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteSet {
    /// Empty write set with a small initial table.
    pub fn new() -> Self {
        Self {
            slots: vec![EMPTY_SLOT; INITIAL_SLOTS],
            shift: 64 - INITIAL_SLOTS.trailing_zeros(),
            mask: INITIAL_SLOTS - 1,
            live: 0,
            stamp: 0,
            payload: Vec::new(),
            hasher: Fnv1a::new(),
            hash_dirty: false,
        }
    }

    /// Starts a new transaction: O(1) — bumps the stamp (logically
    /// emptying the table), clears the arena (keeping capacity), resets
    /// the streaming hasher.
    pub fn begin(&mut self) {
        self.stamp += 1;
        self.live = 0;
        self.payload.clear();
        self.hasher = Fnv1a::new();
        self.hash_dirty = false;
    }

    /// Number of entries staged in the current transaction.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when the current transaction has staged nothing.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The staged payload (all entries, wire format) so far.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    #[inline(always)]
    fn bucket(&self, addr: usize) -> usize {
        // Fibonacci hashing: multiply by 2^64/phi, take the top bits.
        (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) & self.mask
    }

    /// Finds the entry staged for `addr` in the current transaction.
    #[inline]
    pub fn lookup(&self, addr: usize) -> Option<EntrySlot> {
        let mut i = self.bucket(addr);
        loop {
            let s = &self.slots[i];
            if s.stamp != self.stamp {
                return None;
            }
            if s.addr == addr {
                return Some(s.entry);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Stages a fresh entry for `addr`: appends the entry header and
    /// `data` to the payload arena, feeds the streaming hasher, and
    /// indexes the entry. `value_cursor` is the log-chain cursor where the
    /// value bytes will land (captured by the caller from the log area).
    ///
    /// Returns the [`EntrySlot`] recorded for the entry.
    pub fn stage(&mut self, addr: usize, data: &[u8], value_cursor: Cursor) -> EntrySlot {
        let hdr = record::entry_header(addr, data.len());
        let payload_off = self.payload.len() + ENTRY_HDR;
        self.payload.extend_from_slice(&hdr);
        self.payload.extend_from_slice(data);
        if !self.hash_dirty {
            self.hasher.update(&hdr);
            self.hasher.update(data);
        }
        let entry = EntrySlot { payload_off, len: data.len(), value_cursor };
        self.insert(addr, entry);
        entry
    }

    /// Overwrites the value bytes of an already-staged entry in place
    /// (the same-address-same-length dedup path). Poisons the streaming
    /// hash; [`Self::checksum`] will re-stream once at seal time.
    pub fn patch(&mut self, slot: EntrySlot, data: &[u8]) {
        debug_assert_eq!(slot.len, data.len());
        self.payload[slot.payload_off..slot.payload_off + slot.len].copy_from_slice(data);
        self.hash_dirty = true;
    }

    /// The record checksum for the staged payload, sealed with `ts`.
    ///
    /// Fast path: the streaming hasher already holds the payload hash and
    /// only the `(len, ts)` suffix is folded in. Slow path (after any
    /// [`Self::patch`]): one full re-stream of the payload — no
    /// allocation either way.
    pub fn checksum(&self, ts: u64) -> u64 {
        let h = if self.hash_dirty {
            let mut h = Fnv1a::new();
            h.update(&self.payload);
            h
        } else {
            self.hasher
        };
        record::record_checksum_finish(h, self.payload.len(), ts)
    }

    fn insert(&mut self, addr: usize, entry: EntrySlot) {
        if (self.live + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let stamp = self.stamp;
        let mut i = self.bucket(addr);
        loop {
            let s = &mut self.slots[i];
            if s.stamp != stamp {
                *s = Slot { addr, stamp, entry };
                self.live += 1;
                break;
            }
            if s.addr == addr {
                s.entry = entry;
                break;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        self.shift = 64 - new_cap.trailing_zeros();
        self.mask = new_cap - 1;
        let stamp = self.stamp;
        for s in old {
            if s.stamp != stamp {
                continue;
            }
            let mut i = self.bucket(s.addr);
            loop {
                if self.slots[i].stamp != stamp {
                    self.slots[i] = s;
                    break;
                }
                i = (i + 1) & self.mask;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record;

    fn cur(n: usize) -> Cursor {
        Cursor { block: n, pos: 0 }
    }

    #[test]
    fn stage_lookup_roundtrip() {
        let mut ws = WriteSet::new();
        ws.begin();
        let a = ws.stage(100, &[1, 2, 3, 4], cur(77));
        let b = ws.stage(200, &[9; 8], cur(99));
        assert_eq!(ws.lookup(100), Some(a));
        assert_eq!(ws.lookup(200), Some(b));
        assert_eq!(ws.lookup(300), None);
        assert_eq!(ws.len(), 2);
        // Payload layout: hdr(100,4) val hdr(200,8) val.
        assert_eq!(ws.payload().len(), 2 * ENTRY_HDR + 4 + 8);
        assert_eq!(&ws.payload()[a.payload_off..a.payload_off + 4], &[1, 2, 3, 4]);
    }

    #[test]
    fn begin_clears_in_o1() {
        let mut ws = WriteSet::new();
        ws.begin();
        for i in 0..100 {
            ws.stage(i * 8, &[i as u8; 8], cur(i));
        }
        assert_eq!(ws.len(), 100);
        ws.begin();
        assert!(ws.is_empty());
        assert_eq!(ws.lookup(0), None);
        assert_eq!(ws.lookup(8 * 50), None);
        assert!(ws.payload().is_empty());
        // Re-staging after clear works and lookups only see the new tx.
        ws.stage(8, &[7; 8], cur(1));
        assert!(ws.lookup(8).is_some());
        assert_eq!(ws.lookup(16), None);
    }

    #[test]
    fn streamed_checksum_matches_oneshot() {
        let mut ws = WriteSet::new();
        ws.begin();
        for i in 0..37usize {
            let len = 1 + (i * 5) % 40;
            let data: Vec<u8> = (0..len).map(|j| (i * 31 + j) as u8).collect();
            ws.stage(i * 64, &data, cur(i));
        }
        for ts in [1u64, 2, 1 << 40] {
            assert_eq!(ws.checksum(ts), record::record_checksum(ts, ws.payload()));
        }
    }

    #[test]
    fn patch_poisons_then_checksum_still_correct() {
        let mut ws = WriteSet::new();
        ws.begin();
        let slot = ws.stage(64, &[1, 1, 1, 1], cur(0));
        ws.stage(128, &[2; 8], cur(0));
        ws.patch(slot, &[9, 9, 9, 9]);
        assert_eq!(&ws.payload()[slot.payload_off..slot.payload_off + 4], &[9, 9, 9, 9]);
        assert_eq!(ws.checksum(5), record::record_checksum(5, ws.payload()));
        // Next transaction resumes the fast streaming path.
        ws.begin();
        ws.stage(64, &[3; 4], cur(0));
        assert_eq!(ws.checksum(6), record::record_checksum(6, ws.payload()));
    }

    #[test]
    fn collisions_and_growth_keep_lookups_correct() {
        let mut ws = WriteSet::new();
        ws.begin();
        // Far more entries than the initial table; many share low bits.
        for i in 0..500usize {
            ws.stage(i << 12, &[(i & 0xff) as u8; 4], cur(i));
        }
        for i in 0..500usize {
            let s = ws.lookup(i << 12).expect("present");
            assert_eq!(s.value_cursor, cur(i));
            assert_eq!(ws.payload()[s.payload_off], (i & 0xff) as u8);
        }
        assert_eq!(ws.lookup(501 << 12), None);
    }

    #[test]
    fn restage_same_addr_updates_index() {
        // The runtime re-stages when the *length* changes; the index must
        // then point at the newest entry.
        let mut ws = WriteSet::new();
        ws.begin();
        let first = ws.stage(64, &[1; 4], cur(10));
        let second = ws.stage(64, &[2; 8], cur(20));
        assert_ne!(first, second);
        assert_eq!(ws.lookup(64), Some(second));
        assert_eq!(ws.checksum(3), record::record_checksum(3, ws.payload()));
    }
}
