//! FNV-1a checksum used as the record commit flag.

/// 64-bit FNV-1a hash.
///
/// Used to validate log records; a mismatch marks the record as torn or
/// uncommitted (the paper's checksum-as-commit-status design, which avoids
/// a dedicated commit flag and its extra fence).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let a = fnv1a64(&[0b0000_0000, 1, 2, 3]);
        let b = fnv1a64(&[0b0000_0001, 1, 2, 3]);
        assert_ne!(a, b);
    }

    #[test]
    fn length_extension_differs() {
        assert_ne!(fnv1a64(&[0]), fnv1a64(&[0, 0]));
    }
}
