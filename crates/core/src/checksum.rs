//! FNV-1a checksum used as the record commit flag.
//!
//! Two implementations of the same function live here on purpose:
//!
//! * [`fnv1a64_reference`] — the textbook byte-serial loop. It *defines*
//!   the hash and is kept as the oracle for the property tests.
//! * [`fnv1a64`] / [`Fnv1a`] — the hot-path version. FNV-1a is inherently
//!   sequential (`h = (h ^ b) * p` chains through every byte), so it
//!   cannot be parallelised bit-identically across bytes; what *can* be
//!   done is processing the input eight bytes per loop iteration: one
//!   unaligned 8-byte load, then eight unrolled xor/multiply steps on the
//!   register, with a byte-at-a-time tail. Same byte operations in the
//!   same order — bit-identical by construction — but the bounds checks,
//!   loads, and loop overhead drop by ~8×, which matters because every
//!   commit hashes its whole record payload.
//!
//! [`Fnv1a`] is the streaming form: the commit path feeds entry bytes into
//! it *as they are staged* instead of re-walking the payload at seal time.

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x100_0000_01b3;

/// Folds one byte into the running hash.
#[inline(always)]
fn step(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(PRIME)
}

/// Folds `bytes` into `h`, eight bytes per iteration.
#[inline]
fn fold(mut h: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        // One unaligned load, then eight register-only steps. The byte
        // order of the steps is exactly the byte order of the input, so
        // the result is bit-identical to the serial loop.
        let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = step(h, w as u8);
        h = step(h, (w >> 8) as u8);
        h = step(h, (w >> 16) as u8);
        h = step(h, (w >> 24) as u8);
        h = step(h, (w >> 32) as u8);
        h = step(h, (w >> 40) as u8);
        h = step(h, (w >> 48) as u8);
        h = step(h, (w >> 56) as u8);
    }
    for &b in chunks.remainder() {
        h = step(h, b);
    }
    h
}

/// 64-bit FNV-1a hash, word-at-a-time (see the module docs).
///
/// Used to validate log records; a mismatch marks the record as torn or
/// uncommitted (the paper's checksum-as-commit-status design, which avoids
/// a dedicated commit flag and its extra fence).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fold(OFFSET, bytes)
}

/// The byte-serial FNV-1a definition. Reference implementation for the
/// property tests; production code uses [`fnv1a64`].
pub fn fnv1a64_reference(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h = step(h, b);
    }
    h
}

/// Streaming FNV-1a hasher: feed bytes in any chunking, the result equals
/// [`fnv1a64`] over the concatenation. FNV has no block state, so the
/// struct is a single `u64` and cheap to copy/snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    h: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Fresh hasher (offset basis).
    pub fn new() -> Self {
        Self { h: OFFSET }
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        self.h = fold(self.h, bytes);
    }

    /// The hash of everything fed so far. Does not consume the hasher —
    /// FNV supports continued feeding after a read.
    pub fn finish(&self) -> u64 {
        self.h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64_reference(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64_reference(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn word_and_byte_paths_agree_on_all_small_lengths() {
        // Cover every tail length 0..8 plus several full words.
        let data: Vec<u8> = (0u16..64).map(|i| (i * 37 + 11) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(fnv1a64(&data[..len]), fnv1a64_reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn streaming_matches_oneshot_across_chunkings() {
        let data: Vec<u8> = (0u16..256).map(|i| (i ^ (i >> 3)) as u8).collect();
        let expect = fnv1a64(&data);
        for chunk in [1, 3, 7, 8, 13, 64, 256] {
            let mut h = Fnv1a::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finish(), expect, "chunk {chunk}");
        }
    }

    #[test]
    fn single_bit_flip_changes_hash() {
        let a = fnv1a64(&[0b0000_0000, 1, 2, 3]);
        let b = fnv1a64(&[0b0000_0001, 1, 2, 3]);
        assert_ne!(a, b);
    }

    #[test]
    fn length_extension_differs() {
        assert_ne!(fnv1a64(&[0]), fnv1a64(&[0, 0]));
    }
}
