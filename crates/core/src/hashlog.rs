//! The paper's space-efficient strawman: one log slot per datum, located by
//! hashing its address (Section 4).
//!
//! Instead of an append-only sequence, [`HashLogSpmt`] keeps a fixed
//! persistent hash table with **one slot per 32-byte chunk of durable
//! data**. Each update overwrites the slot in place, so the log never
//! grows — but slot locations are effectively random in PM, forfeiting the
//! XPLine write-combining that makes sequential logs fast. The paper
//! measures this design at **3.2× slower** than the sequential log; the
//! `micro_hashlog` bench harness reproduces that comparison.
//!
//! To stay crash-safe while overwriting in place, every slot holds **two
//! generations** of the record. An update always overwrites the *older*
//! generation, so the newest committed record survives any crash; a
//! per-runtime persistent commit timestamp distinguishes committed from
//! in-flight generations (a generation with `ts` above the committed
//! timestamp is ignored at recovery, which revokes interrupted
//! transactions).

use std::collections::BTreeSet;

use specpmt_pmem::{root_off, CrashImage, PmemPool, TimingMode, BUMP_OFF, CACHE_LINE, POOL_MAGIC};
use specpmt_txn::{Recover, TxAccess, TxRuntime, TxStats};

use crate::checksum::fnv1a64;

/// Root slot holding the table base offset.
pub const HASH_BASE_SLOT: usize = 4;
/// Root slot holding the table capacity (slot count).
pub const HASH_CAP_SLOT: usize = 5;
/// Root slot holding the persistent committed-transaction timestamp.
pub const HASH_CTS_SLOT: usize = 6;

/// Bytes of durable data covered by one slot.
pub const CHUNK: usize = 32;
/// Bytes per slot (two generations + key, padded to two cache half-lines).
pub const SLOT_BYTES: usize = 128;

const GEN_A: usize = 8; // key at 0..8
const GEN_B: usize = 56;
const GEN_SIZE: usize = 48; // ts(8) + cksum(8) + value(32)

/// Configuration for [`HashLogSpmt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashLogConfig {
    /// Number of slots. Must exceed the number of distinct 32-byte chunks
    /// the workload updates (the table does not grow).
    pub capacity: usize,
}

impl Default for HashLogConfig {
    fn default() -> Self {
        Self { capacity: 1 << 14 }
    }
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn gen_checksum(key: u64, ts: u64, value: &[u8]) -> u64 {
    let mut b = Vec::with_capacity(16 + value.len());
    b.extend_from_slice(&key.to_le_bytes());
    b.extend_from_slice(&ts.to_le_bytes());
    b.extend_from_slice(value);
    fnv1a64(&b)
}

/// Hash-located, in-place-overwritten speculative log (the paper's
/// memory-frugal alternative with poor spatial locality).
#[derive(Debug)]
pub struct HashLogSpmt {
    pool: PmemPool,
    cfg: HashLogConfig,
    table_base: usize,
    in_tx: bool,
    tx_ts: u64,
    ts_counter: u64,
    dirty_slots: BTreeSet<usize>,
    stats: TxStats,
}

impl HashLogSpmt {
    /// Creates the runtime, allocating and zeroing the slot table.
    /// Construction runs with device timing disabled.
    ///
    /// # Panics
    ///
    /// Panics if the pool cannot hold the table.
    pub fn new(mut pool: PmemPool, cfg: HashLogConfig) -> Self {
        assert!(cfg.capacity.is_power_of_two(), "capacity must be a power of two");
        let prev = pool.device().timing();
        pool.device_mut().set_timing(TimingMode::Off);
        let table_base = pool
            .alloc_direct(cfg.capacity * SLOT_BYTES, CACHE_LINE)
            .expect("pool too small for hash log table");
        // Fresh pool memory is zeroed; persist the zeros.
        pool.device_mut().persist_range(table_base, cfg.capacity * SLOT_BYTES);
        pool.set_root_direct(HASH_BASE_SLOT, table_base as u64);
        pool.set_root_direct(HASH_CAP_SLOT, cfg.capacity as u64);
        pool.set_root_direct(HASH_CTS_SLOT, 0);
        pool.device_mut().set_timing(prev);
        Self {
            pool,
            cfg,
            table_base,
            in_tx: false,
            tx_ts: 0,
            ts_counter: 1,
            dirty_slots: BTreeSet::new(),
            stats: TxStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HashLogConfig {
        &self.cfg
    }

    fn slot_addr(&self, idx: usize) -> usize {
        self.table_base + idx * SLOT_BYTES
    }

    /// Finds (or claims) the slot for a chunk key, linear probing.
    fn locate(&mut self, chunk_index: usize) -> usize {
        let key = chunk_index as u64 + 1;
        let mask = self.cfg.capacity - 1;
        let mut idx = (mix(key) as usize) & mask;
        for _ in 0..self.cfg.capacity {
            let s = self.slot_addr(idx);
            let k = self.pool.device().peek_u64(s);
            if k == key {
                return s;
            }
            if k == 0 {
                self.pool.device_mut().write_u64(s, key);
                self.dirty_slots.insert(s);
                return s;
            }
            idx = (idx + 1) & mask;
        }
        panic!("hash log table full (capacity {})", self.cfg.capacity);
    }

    /// Logs the current (post-write) value of a chunk into its slot,
    /// overwriting the older generation.
    fn splog_chunk(&mut self, chunk_index: usize) {
        let chunk_addr = chunk_index * CHUNK;
        let mut value = [0u8; CHUNK];
        value.copy_from_slice(self.pool.device().peek(chunk_addr, CHUNK));
        let s = self.locate(chunk_index);
        let key = chunk_index as u64 + 1;
        let ts_a = self.pool.device().peek_u64(s + GEN_A);
        let ts_b = self.pool.device().peek_u64(s + GEN_B);
        // Overwrite our own generation from earlier in this tx, else the
        // older one (never the newest committed record).
        let gen = if ts_a == self.tx_ts {
            GEN_A
        } else if ts_b == self.tx_ts {
            GEN_B
        } else if ts_a <= ts_b {
            GEN_A
        } else {
            GEN_B
        };
        let cksum = gen_checksum(key, self.tx_ts, &value);
        let dev = self.pool.device_mut();
        dev.write_u64(s + gen, self.tx_ts);
        dev.write_u64(s + gen + 8, cksum);
        dev.write(s + gen + 16, &value);
        self.dirty_slots.insert(s + gen);
        self.stats.log_bytes += GEN_SIZE as u64;
    }
}

impl TxAccess for HashLogSpmt {
    fn begin(&mut self) {
        assert!(!self.in_tx, "nested transaction on thread 0");
        self.in_tx = true;
        self.tx_ts = self.ts_counter;
        self.ts_counter += 1;
        self.dirty_slots.clear();
        self.stats.tx_begun += 1;
    }

    fn write(&mut self, addr: usize, data: &[u8]) {
        assert!(self.in_tx, "write outside transaction");
        self.pool.device_mut().write(addr, data);
        self.stats.updates += 1;
        self.stats.data_bytes += data.len() as u64;
        if data.is_empty() {
            return;
        }
        let first = addr / CHUNK;
        let last = (addr + data.len() - 1) / CHUNK;
        for c in first..=last {
            self.splog_chunk(c);
        }
    }

    fn read(&mut self, addr: usize, buf: &mut [u8]) {
        self.pool.device_mut().read(addr, buf);
    }

    fn commit(&mut self) {
        assert!(self.in_tx, "commit outside transaction");
        // Fence 1: persist all touched slots (random locations — the
        // locality penalty the paper measures).
        let slots = std::mem::take(&mut self.dirty_slots);
        for s in slots {
            // A slot region may span two lines; flush both halves' lines.
            self.pool.device_mut().clwb_range(s, GEN_SIZE.min(SLOT_BYTES));
        }
        self.pool.device_mut().sfence();
        // Fence 2: advance the persistent committed timestamp.
        self.pool.device_mut().write_u64(root_off(HASH_CTS_SLOT), self.tx_ts);
        self.pool.device_mut().persist_range(root_off(HASH_CTS_SLOT), 8);
        self.in_tx = false;
        self.stats.tx_committed += 1;
        self.stats.log_live_bytes = (self.cfg.capacity * SLOT_BYTES) as u64;
        self.stats.log_peak_bytes = self.stats.log_live_bytes;
    }

    fn alloc(&mut self, size: usize, align: usize) -> usize {
        assert!(self.in_tx, "alloc outside transaction");
        let r = self.pool.reserve(size, align).expect("pool heap exhausted");
        if let Some(bump) = r.new_bump {
            self.write_u64(BUMP_OFF, bump);
        }
        r.off
    }

    fn free(&mut self, addr: usize, size: usize, align: usize) {
        self.pool.free(addr, size, align);
    }

    fn in_tx(&self) -> bool {
        self.in_tx
    }

    specpmt_txn::impl_pool_tx_timing!();
}

impl TxRuntime for HashLogSpmt {
    fn pool(&self) -> &PmemPool {
        &self.pool
    }

    fn pool_mut(&mut self) -> &mut PmemPool {
        &mut self.pool
    }

    fn name(&self) -> &'static str {
        "HashLog-SPMT"
    }

    fn tx_stats(&self) -> TxStats {
        self.stats.clone()
    }
}

impl Recover for HashLogSpmt {
    fn recover(image: &mut CrashImage) {
        if image.len() < specpmt_pmem::POOL_HEADER_SIZE || image.read_u64(0) != POOL_MAGIC {
            return;
        }
        let base = image.read_u64(root_off(HASH_BASE_SLOT)) as usize;
        let cap = image.read_u64(root_off(HASH_CAP_SLOT)) as usize;
        let cts = image.read_u64(root_off(HASH_CTS_SLOT));
        if base == 0 || cap == 0 || base + cap * SLOT_BYTES > image.len() {
            return;
        }
        for i in 0..cap {
            let s = base + i * SLOT_BYTES;
            let key = image.read_u64(s);
            if key == 0 {
                continue;
            }
            let chunk_addr = (key as usize - 1) * CHUNK;
            if chunk_addr + CHUNK > image.len() {
                continue;
            }
            let mut best: Option<(u64, [u8; CHUNK])> = None;
            for gen in [GEN_A, GEN_B] {
                let ts = image.read_u64(s + gen);
                if ts == 0 || ts > cts {
                    continue; // empty or uncommitted (revoked)
                }
                let cksum = image.read_u64(s + gen + 8);
                let mut value = [0u8; CHUNK];
                value.copy_from_slice(image.read_bytes(s + gen + 16, CHUNK));
                if gen_checksum(key, ts, &value) != cksum {
                    continue; // torn
                }
                if best.is_none_or(|(bts, _)| ts > bts) {
                    best = Some((ts, value));
                }
            }
            if let Some((_, value)) = best {
                image.write_bytes(chunk_addr, &value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::CrashControl;
    use specpmt_pmem::{CrashPolicy, PmemConfig, PmemDevice};

    fn runtime() -> HashLogSpmt {
        let pool = PmemPool::create(PmemDevice::new(PmemConfig::new(1 << 22)));
        HashLogSpmt::new(pool, HashLogConfig { capacity: 1 << 10 })
    }

    fn alloc_region(rt: &mut HashLogSpmt, bytes: usize) -> usize {
        let base = rt.pool_mut().alloc_direct(bytes, CHUNK).unwrap();
        rt.pool_mut().device_mut().set_timing(TimingMode::Off);
        rt.pool_mut().device_mut().persist_range(base, bytes);
        rt.pool_mut().device_mut().set_timing(TimingMode::On);
        base
    }

    #[test]
    fn committed_survives_all_lost() {
        let mut rt = runtime();
        let a = alloc_region(&mut rt, 64);
        rt.begin();
        rt.write_u64(a, 42);
        rt.commit();
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        HashLogSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 42);
    }

    #[test]
    fn uncommitted_revoked_even_if_evicted() {
        let mut rt = runtime();
        let a = alloc_region(&mut rt, 64);
        rt.begin();
        rt.write_u64(a, 1);
        rt.commit();
        rt.begin();
        rt.write_u64(a, 2);
        let mut img = rt.pool().device().capture(CrashPolicy::AllSurvive);
        HashLogSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 1);
    }

    #[test]
    fn two_generations_preserve_newest_committed() {
        let mut rt = runtime();
        let a = alloc_region(&mut rt, 64);
        for v in 1..=5u64 {
            rt.begin();
            rt.write_u64(a, v);
            rt.commit();
        }
        // Start a sixth update, crash before commit.
        rt.begin();
        rt.write_u64(a, 6);
        let mut img = rt.pool().device().capture(CrashPolicy::AllSurvive);
        HashLogSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 5);
    }

    #[test]
    fn repeated_update_same_tx_overwrites_own_generation() {
        let mut rt = runtime();
        let a = alloc_region(&mut rt, 64);
        rt.begin();
        rt.write_u64(a, 1);
        rt.commit();
        rt.begin();
        for v in 2..50u64 {
            rt.write_u64(a, v);
        }
        rt.commit();
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        HashLogSpmt::recover(&mut img);
        assert_eq!(img.read_u64(a), 49);
    }

    #[test]
    fn log_footprint_is_fixed() {
        let mut rt = runtime();
        let a = alloc_region(&mut rt, 1024);
        let cap_bytes = (rt.config().capacity * SLOT_BYTES) as u64;
        for i in 0..100 {
            rt.begin();
            rt.write_u64(a + (i % 128) * 8, i as u64);
            rt.commit();
        }
        assert_eq!(rt.tx_stats().log_live_bytes, cap_bytes);
        assert_eq!(rt.tx_stats().log_peak_bytes, cap_bytes);
    }

    #[test]
    fn collision_probing_separates_chunks() {
        let mut rt = runtime();
        let a = alloc_region(&mut rt, 1 << 12);
        rt.begin();
        for i in 0..(1 << 12) / CHUNK {
            rt.write_u64(a + i * CHUNK, i as u64);
        }
        rt.commit();
        let mut img = rt.pool().device().capture(CrashPolicy::AllLost);
        HashLogSpmt::recover(&mut img);
        for i in 0..(1 << 12) / CHUNK {
            assert_eq!(img.read_u64(a + i * CHUNK), i as u64);
        }
    }
}
