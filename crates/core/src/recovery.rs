//! Post-crash recovery for software SpecPMT.
//!
//! Recovery is intentionally simple (Section 3.1): walk every thread's log
//! chain from its persistent head pointer, keep only checksum-valid
//! (= committed) records, then replay all entries across threads in commit
//! timestamp order. Replaying effectively:
//!
//! * **redoes** committed transactions whose in-place data writes never
//!   reached PM (the speculative log holds the committed values), and
//! * **undoes** interrupted transactions whose in-place writes *did* reach
//!   PM (the freshest committed record for each byte is replayed last).
//!
//! Unreclaimed stale records may replay too; they are overwritten by
//! fresher records later in the order, which is harmless.

use specpmt_pmem::{root_off, CrashImage, POOL_MAGIC};

use crate::record::{parse_chain, LogRecord};
use crate::runtime::{BLOCK_BYTES_SLOT, LOG_HEAD_SLOT_BASE, MAX_THREADS};

/// Parses every thread's committed records from a crash image.
///
/// Returns records sorted by commit timestamp (ascending). An image without
/// SpecPMT metadata yields no records.
pub fn committed_records(image: &CrashImage) -> Vec<LogRecord> {
    if image.len() < specpmt_pmem::POOL_HEADER_SIZE || image.read_u64(0) != POOL_MAGIC {
        return Vec::new();
    }
    let block_bytes = image.read_u64(root_off(BLOCK_BYTES_SLOT)) as usize;
    if !(64..=(1 << 20)).contains(&block_bytes) {
        return Vec::new();
    }
    let mut records = Vec::new();
    for tid in 0..MAX_THREADS {
        let head = image.read_u64(root_off(LOG_HEAD_SLOT_BASE + tid)) as usize;
        if head != 0 {
            records.extend(parse_chain(image, head, block_bytes));
        }
    }
    records.sort_by_key(|r| r.ts);
    records
}

/// Repairs `image` in place by replaying all committed records in
/// timestamp order.
pub fn recover_image(image: &mut CrashImage) {
    let records = committed_records(image);
    for rec in &records {
        for e in &rec.entries {
            if e.addr + e.value.len() <= image.len() {
                image.write_bytes(e.addr, &e.value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_specpmt_image_is_untouched() {
        let mut img = CrashImage::new(vec![0xCD; 4096]);
        let before = img.clone();
        recover_image(&mut img);
        assert_eq!(img, before);
    }

    #[test]
    fn empty_pool_image_recovers_to_itself() {
        let pool = specpmt_pmem::PmemPool::create(specpmt_pmem::PmemDevice::new(
            specpmt_pmem::PmemConfig::new(1 << 16),
        ));
        let mut img = pool.device().crash_with(specpmt_pmem::CrashPolicy::AllSurvive);
        let before = img.clone();
        recover_image(&mut img);
        assert_eq!(img, before);
    }
}
