//! Post-crash recovery for software SpecPMT.
//!
//! The reference path is intentionally simple (Section 3.1): walk every
//! thread's log chain from its persistent head pointer, keep only
//! checksum-valid (= committed) records, then replay all entries across
//! threads in commit timestamp order. Replaying effectively:
//!
//! * **redoes** committed transactions whose in-place data writes never
//!   reached PM (the speculative log holds the committed values), and
//! * **undoes** interrupted transactions whose in-place writes *did* reach
//!   PM (the freshest committed record for each byte is replayed last).
//!
//! Unreclaimed stale records may replay too; they are overwritten by
//! fresher records later in the order, which is harmless.
//!
//! # The fast path
//!
//! [`recover_image_opts`] produces a **bit-identical** image to the
//! reference replay, faster, via three independent levers:
//!
//! * **Parallel chain parsing** — the record checksum doubles as the
//!   commit flag and is validated per chain, so each chain parses on its
//!   own OS thread ([`RecoveryOptions::parse_threads`]); chains are
//!   assigned round-robin by index, which keeps the partition (and the
//!   reported parse makespan) deterministic.
//! * **Timestamp merge with a deterministic tie-break** — per-chain record
//!   lists are already timestamp-sorted (a chain's timestamps are issued
//!   in append order from the global counter), so a k-way merge on the
//!   key `(ts, chain index)` reproduces the reference order exactly: the
//!   reference concatenates chains in ascending `tid` order and stable-
//!   sorts by `ts`, which leaves equal timestamps in ascending chain
//!   order. See [`committed_records`] for the tie-break contract.
//! * **Last-writer-wins replay** — the merged sequence is applied in
//!   *reverse* with a byte-claim bitmap: a byte is written by the last
//!   record that touches it and every superseded (stale) store is skipped
//!   instead of copied. Same final image, bytes written once.
//!
//! A [`CheckpointRecord`] (written by
//! `SpecSpmtShared::write_checkpoint`, head persisted in the layout
//! descriptor) bounds how much log must replay at all: it snapshots the
//! last-writer-wins state of every record with `ts <= watermark`, so
//! recovery replays the checkpoint's runs plus only the records above the
//! watermark. A torn or unparsable checkpoint silently degrades to the
//! full replay — the checkpoint is purely redundant state.

use specpmt_pmem::CrashImage;

use crate::layout::PoolLayout;
use crate::record::{parse_chain, parse_checkpoint, CheckpointRecord, LogRecord, REC_HDR};

/// Parses every thread's committed records from a crash image.
///
/// The pool's [`PoolLayout`] (dynamic descriptor or legacy fixed root
/// slots) determines how many chains exist and where their heads live.
/// Returns records sorted by commit timestamp (ascending). An image
/// without SpecPMT metadata yields no records.
///
/// # Tie-break contract
///
/// Records with **equal timestamps** (impossible from one live runtime,
/// whose timestamps come from a global atomic counter — but possible
/// across independently-written pools or hand-built images) are ordered
/// by **ascending chain index, then chain position**: chains are scanned
/// in `tid` order and the sort is stable. The parallel merge in
/// [`recover_image_opts`] reproduces this order bit-identically by
/// merging on the key `(ts, chain index)` — within one chain equal
/// timestamps keep append order. Recovery's final image depends on this
/// order, so it is a compatibility contract, not an implementation
/// detail.
pub fn committed_records(image: &CrashImage) -> Vec<LogRecord> {
    let Some(layout) = PoolLayout::read(image) else {
        return Vec::new();
    };
    let mut records = Vec::new();
    for tid in 0..layout.threads() {
        let head = layout.head(image, tid);
        if head != 0 {
            records.extend(parse_chain(image, head, layout.block_bytes()));
        }
    }
    records.sort_by_key(|r| r.ts);
    records
}

/// Repairs `image` in place by replaying all committed records in
/// timestamp order — the serial reference path. [`recover_image_opts`]
/// must (and is tested to) produce a bit-identical image.
pub fn recover_image(image: &mut CrashImage) {
    let records = committed_records(image);
    for rec in &records {
        for e in &rec.entries {
            if e.addr + e.value.len() <= image.len() {
                image.write_bytes(e.addr, &e.value);
            }
        }
    }
}

/// Tuning for [`recover_image_opts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// OS threads parsing log chains (clamped to `1..=chains`). 1 parses
    /// inline on the calling thread.
    pub parse_threads: usize,
    /// Honour a persisted checkpoint record (skip records at or below its
    /// watermark). Off forces the full replay even when a checkpoint
    /// exists — the bench uses that to measure the bound.
    pub use_checkpoint: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        Self { parse_threads: 1, use_checkpoint: true }
    }
}

impl RecoveryOptions {
    /// Options with `parse_threads` workers and the checkpoint honoured.
    #[must_use]
    pub fn parallel(parse_threads: usize) -> Self {
        Self { parse_threads, use_checkpoint: true }
    }

    /// Disables the checkpoint (full replay).
    #[must_use]
    pub fn without_checkpoint(mut self) -> Self {
        self.use_checkpoint = false;
        self
    }
}

/// What a [`recover_image_opts`] run did — the recovery bench's raw
/// material and the source of the deterministic `recovery_sim_ns_*` keys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Chain slots the layout exposed (registration-table capacity).
    pub chains: usize,
    /// Chains that actually held committed records.
    pub chains_nonempty: usize,
    /// Parse workers used (after clamping).
    pub parse_threads: usize,
    /// Committed records parsed across all chains.
    pub records_parsed: usize,
    /// Records replayed (above the checkpoint watermark, or all of them).
    pub records_replayed: usize,
    /// Records skipped because a checkpoint already covers them.
    pub records_skipped_checkpoint: usize,
    /// Log bytes parsed (record headers + payloads), summed over chains.
    pub bytes_parsed: u64,
    /// Largest per-worker share of `bytes_parsed` under the round-robin
    /// chain partition — the parse phase's critical path. Equal-sized
    /// chains give `bytes_parsed / parse_threads`, i.e. linear speedup.
    pub parse_makespan_bytes: u64,
    /// Bytes actually stored into the image (each byte exactly once).
    pub bytes_replayed: u64,
    /// Entry bytes skipped as stale (superseded by a later writer).
    pub bytes_skipped_stale: u64,
    /// A checkpoint was parsed and honoured.
    pub checkpoint_used: bool,
    /// The honoured checkpoint's watermark (0 when none).
    pub checkpoint_watermark: u64,
    /// Runs the honoured checkpoint contributed.
    pub checkpoint_entries: usize,
}

/// Deterministic cost model for the simulated `recovery_sim_ns_*` keys:
/// fixed restart overhead, parse cost on the critical path (the slowest
/// worker), a per-record merge-and-apply step for every record that
/// enters the replay, a much cheaper timestamp-compare visit for records
/// a checkpoint lets replay skip, and per-byte store cost. The constants
/// are calibrated to the same order of magnitude as the simulated device
/// (≈1 ns/byte streaming reads, ≈100 ns of heap work per record) — their
/// exact values matter less than their determinism: the perf gate
/// compares them at the tight 5% tier across hosts.
const SIM_FIXED_NS: u64 = 2_000;
const SIM_PARSE_NS_PER_BYTE: u64 = 2;
const SIM_MERGE_NS_PER_RECORD: u64 = 120;
const SIM_SKIP_NS_PER_RECORD: u64 = 10;
const SIM_REPLAY_NS_PER_BYTE: u64 = 4;

impl RecoveryReport {
    /// Simulated time-to-recover in nanoseconds under the model above.
    /// Parse parallelism shows up through [`Self::parse_makespan_bytes`];
    /// the checkpoint bound shows up through the merge term moving from
    /// every parsed record to only [`Self::records_replayed`] (skipped
    /// records pay just the watermark compare).
    pub fn sim_ns(&self) -> u64 {
        SIM_FIXED_NS
            + self.parse_makespan_bytes * SIM_PARSE_NS_PER_BYTE
            + (self.records_skipped_checkpoint as u64) * SIM_SKIP_NS_PER_RECORD
            + self.replay_sim_ns()
    }

    /// The replay portion of [`Self::sim_ns`] (merge + byte stores) —
    /// the part a checkpoint bounds: with one, it depends only on the
    /// data written since the watermark, not on total log size.
    pub fn replay_sim_ns(&self) -> u64 {
        (self.records_replayed as u64) * SIM_MERGE_NS_PER_RECORD
            + self.bytes_replayed * SIM_REPLAY_NS_PER_BYTE
    }
}

/// Per-chain parse results, in chain-index order.
struct ParsedChains {
    records: Vec<Vec<LogRecord>>,
    bytes_per_chain: Vec<u64>,
    makespan: u64,
}

fn chain_bytes(records: &[LogRecord]) -> u64 {
    records.iter().map(|r| (REC_HDR + r.payload_len()) as u64).sum()
}

/// Parses every chain, `threads`-wide with a deterministic round-robin
/// partition (worker `w` owns chains `w, w + threads, ...`).
fn parse_chains(image: &CrashImage, layout: &PoolLayout, threads: usize) -> ParsedChains {
    let heads: Vec<usize> = (0..layout.threads()).map(|tid| layout.head(image, tid)).collect();
    let block_bytes = layout.block_bytes();
    let workers = threads.clamp(1, heads.len().max(1));
    let mut records: Vec<Vec<LogRecord>> = Vec::with_capacity(heads.len());
    if workers <= 1 {
        for &head in &heads {
            records.push(if head == 0 {
                Vec::new()
            } else {
                parse_chain(image, head, block_bytes)
            });
        }
    } else {
        let mut slots: Vec<Vec<LogRecord>> = (0..heads.len()).map(|_| Vec::new()).collect();
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(workers);
            for w in 0..workers {
                let heads = &heads;
                joins.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut idx = w;
                    while idx < heads.len() {
                        if heads[idx] != 0 {
                            out.push((idx, parse_chain(image, heads[idx], block_bytes)));
                        }
                        idx += workers;
                    }
                    out
                }));
            }
            for j in joins {
                for (idx, recs) in j.join().expect("chain parse worker panicked") {
                    slots[idx] = recs;
                }
            }
        });
        records = slots;
    }
    let bytes_per_chain: Vec<u64> = records.iter().map(|r| chain_bytes(r)).collect();
    // The deterministic makespan of the round-robin partition: the busiest
    // worker's byte total (what the parse phase's wall clock tracks).
    let mut per_worker = vec![0u64; workers];
    for (idx, b) in bytes_per_chain.iter().enumerate() {
        per_worker[idx % workers] += b;
    }
    let makespan = per_worker.into_iter().max().unwrap_or(0);
    ParsedChains { records, bytes_per_chain, makespan }
}

/// K-way merge of per-chain record lists on the key `(ts, chain index)` —
/// bit-identical to [`committed_records`]' concatenate-then-stable-sort
/// order (see the tie-break contract there).
fn merge_chains(chains: Vec<Vec<LogRecord>>) -> Vec<LogRecord> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = chains.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<LogRecord>> =
        chains.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    for (idx, it) in iters.iter_mut().enumerate() {
        if let Some(rec) = it.next() {
            heap.push(Reverse((rec.ts, idx, RecordBox(rec))));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, idx, boxed))) = heap.pop() {
        out.push(boxed.0);
        if let Some(rec) = iters[idx].next() {
            heap.push(Reverse((rec.ts, idx, RecordBox(rec))));
        }
    }
    out
}

/// Heap payload wrapper: ordering is fully decided by the `(ts, chain)`
/// prefix of the tuple, so the record itself never needs comparing.
struct RecordBox(LogRecord);

impl PartialEq for RecordBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for RecordBox {}
impl PartialOrd for RecordBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RecordBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// One store the replay phase must apply, in forward replay order.
enum ReplayItem<'a> {
    /// A checkpoint run (replays first; anything else supersedes it).
    Ckpt(&'a crate::record::LogEntry),
    /// A record entry.
    Entry(&'a crate::record::LogEntry),
}

/// Repairs `image` in place — same result as [`recover_image`], computed
/// with parallel chain parsing, a checkpoint-bounded record set, and
/// last-writer-wins byte resolution. Returns the work report.
pub fn recover_image_opts(image: &mut CrashImage, opts: &RecoveryOptions) -> RecoveryReport {
    let mut report =
        RecoveryReport { parse_threads: opts.parse_threads.max(1), ..RecoveryReport::default() };
    let Some(layout) = PoolLayout::read(image) else {
        return report;
    };
    report.chains = layout.threads();

    // Checkpoint first: a torn/unparsable record degrades to full replay.
    let ckpt: Option<CheckpointRecord> = if opts.use_checkpoint {
        let head = layout.ckpt_head(image);
        parse_checkpoint(image, head, layout.block_bytes())
    } else {
        None
    };

    let parsed = parse_chains(image, &layout, opts.parse_threads);
    report.parse_threads = opts.parse_threads.clamp(1, layout.threads().max(1));
    report.chains_nonempty = parsed.records.iter().filter(|r| !r.is_empty()).count();
    report.records_parsed = parsed.records.iter().map(Vec::len).sum();
    report.bytes_parsed = parsed.bytes_per_chain.iter().sum();
    report.parse_makespan_bytes = parsed.makespan;

    let merged = merge_chains(parsed.records);

    // Forward replay order: checkpoint runs, then every record above the
    // watermark. Records at or below it are exactly what the checkpoint
    // folded in, so they are skipped wholesale.
    let watermark = match &ckpt {
        Some(c) => {
            report.checkpoint_used = true;
            report.checkpoint_watermark = c.watermark;
            report.checkpoint_entries = c.entries.len();
            c.watermark
        }
        None => 0,
    };
    let mut forward: Vec<ReplayItem> = Vec::new();
    if let Some(c) = &ckpt {
        forward.extend(c.entries.iter().map(ReplayItem::Ckpt));
    }
    for rec in &merged {
        if report.checkpoint_used && rec.ts <= watermark {
            report.records_skipped_checkpoint += 1;
            continue;
        }
        report.records_replayed += 1;
        forward.extend(rec.entries.iter().map(ReplayItem::Entry));
    }

    // Last-writer-wins: walk the forward order in reverse, claim bytes in
    // a bitmap, store only bytes nobody later (in forward order) wrote.
    // This reproduces "last store wins" without writing any byte twice.
    // The reference path drops any entry that does not fit the image, so
    // the same bounds check is applied *before* claiming.
    let mut claimed = vec![0u64; image.len().div_ceil(64)];
    for item in forward.iter().rev() {
        let e = match item {
            ReplayItem::Ckpt(e) | ReplayItem::Entry(e) => e,
        };
        if e.value.is_empty() || e.addr + e.value.len() > image.len() {
            continue;
        }
        // Claim-and-write per byte; runs of unclaimed bytes are written in
        // one store to keep the common (no-overlap) case cheap.
        let mut run_start: Option<usize> = None;
        for i in 0..e.value.len() {
            let addr = e.addr + i;
            let (word, bit) = (addr / 64, addr % 64);
            let fresh = claimed[word] & (1 << bit) == 0;
            if fresh {
                claimed[word] |= 1 << bit;
                if run_start.is_none() {
                    run_start = Some(i);
                }
            } else if let Some(s) = run_start.take() {
                image.write_bytes(e.addr + s, &e.value[s..i]);
                report.bytes_replayed += (i - s) as u64;
            }
            if !fresh {
                report.bytes_skipped_stale += 1;
            }
        }
        if let Some(s) = run_start.take() {
            image.write_bytes(e.addr + s, &e.value[s..]);
            report.bytes_replayed += (e.value.len() - s) as u64;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::CrashControl;

    #[test]
    fn non_specpmt_image_is_untouched() {
        let mut img = CrashImage::new(vec![0xCD; 4096]);
        let before = img.clone();
        recover_image(&mut img);
        assert_eq!(img, before);
        let mut img2 = before.clone();
        let report = recover_image_opts(&mut img2, &RecoveryOptions::parallel(4));
        assert_eq!(img2, before);
        assert_eq!(report, RecoveryReport { parse_threads: 4, ..RecoveryReport::default() });
    }

    #[test]
    fn empty_pool_image_recovers_to_itself() {
        let pool = specpmt_pmem::PmemPool::create(specpmt_pmem::PmemDevice::new(
            specpmt_pmem::PmemConfig::new(1 << 16),
        ));
        let mut img = pool.device().capture(specpmt_pmem::CrashPolicy::AllSurvive);
        let before = img.clone();
        recover_image(&mut img);
        assert_eq!(img, before);
        let mut img2 = before.clone();
        recover_image_opts(&mut img2, &RecoveryOptions::default());
        assert_eq!(img2, before);
    }

    #[test]
    fn sim_model_rewards_parallel_parse_and_checkpoint_bound() {
        let full = RecoveryReport {
            chains: 8,
            parse_threads: 1,
            records_parsed: 1000,
            records_replayed: 1000,
            bytes_parsed: 80_000,
            parse_makespan_bytes: 80_000,
            bytes_replayed: 40_000,
            ..RecoveryReport::default()
        };
        let parallel = RecoveryReport { parse_threads: 8, parse_makespan_bytes: 10_000, ..full };
        assert!(parallel.sim_ns() < full.sim_ns());
        let ckpt = RecoveryReport {
            records_replayed: 50,
            records_skipped_checkpoint: 950,
            checkpoint_used: true,
            ..full
        };
        // Same parse and byte-store work, but 950 records downgrade from
        // the merge-and-apply charge to the watermark-compare charge.
        assert!(ckpt.sim_ns() < full.sim_ns());
        assert!(ckpt.replay_sim_ns() < full.replay_sim_ns());
        // The replay portion ignores log size entirely: doubling parse
        // work moves sim_ns but not replay_sim_ns.
        let bigger_log =
            RecoveryReport { bytes_parsed: 160_000, parse_makespan_bytes: 160_000, ..ckpt };
        assert_eq!(bigger_log.replay_sim_ns(), ckpt.replay_sim_ns());
    }
}
