//! Post-crash recovery for software SpecPMT.
//!
//! The reference path is intentionally simple (Section 3.1): walk every
//! thread's log chain from its persistent head pointer, keep only
//! checksum-valid (= committed) records, then replay all entries across
//! threads in commit timestamp order. Replaying effectively:
//!
//! * **redoes** committed transactions whose in-place data writes never
//!   reached PM (the speculative log holds the committed values), and
//! * **undoes** interrupted transactions whose in-place writes *did* reach
//!   PM (the freshest committed record for each byte is replayed last).
//!
//! Unreclaimed stale records may replay too; they are overwritten by
//! fresher records later in the order, which is harmless.
//!
//! # The fast path
//!
//! [`recover_image_opts`] produces a **bit-identical** image to the
//! reference replay, faster, via three independent levers:
//!
//! * **Parallel chain parsing** — the record checksum doubles as the
//!   commit flag and is validated per chain, so each chain parses on its
//!   own OS thread ([`RecoveryOptions::parse_threads`]); chains are
//!   assigned round-robin by index, which keeps the partition (and the
//!   reported parse makespan) deterministic.
//! * **Timestamp merge with a deterministic tie-break** — per-chain record
//!   lists are already timestamp-sorted (a chain's timestamps are issued
//!   in append order from the global counter), so a k-way merge on the
//!   key `(ts, chain index)` reproduces the reference order exactly: the
//!   reference concatenates chains in ascending `tid` order and stable-
//!   sorts by `ts`, which leaves equal timestamps in ascending chain
//!   order. See [`committed_records`] for the tie-break contract.
//! * **Last-writer-wins replay** — the merged sequence is applied in
//!   *reverse* with a byte-claim bitmap: a byte is written by the last
//!   record that touches it and every superseded (stale) store is skipped
//!   instead of copied. Same final image, bytes written once.
//!
//! A [`CheckpointRecord`] (written by
//! `SpecSpmtShared::write_checkpoint`, head persisted in the layout
//! descriptor) bounds how much log must replay at all: it snapshots the
//! last-writer-wins state of every record with `ts <= watermark`, so
//! recovery replays the checkpoint's runs plus only the records above the
//! watermark. A torn or unparsable checkpoint silently degrades to the
//! full replay — the checkpoint is purely redundant state.

use std::collections::BTreeMap;
use std::fmt;

use specpmt_pmem::{sites, CrashImage};
use specpmt_telemetry::blackbox::{
    decode_region, decode_region_header, kv_op_name, region_bytes, BbEvent, BbKind, REGION_HDR,
};
use specpmt_telemetry::{JsonWriter, StatExport};

use crate::layout::PoolLayout;
use crate::record::{parse_chain, parse_checkpoint, CheckpointRecord, LogRecord, REC_HDR};

/// Parses every thread's committed records from a crash image.
///
/// The pool's [`PoolLayout`] (dynamic descriptor or legacy fixed root
/// slots) determines how many chains exist and where their heads live.
/// Returns records sorted by commit timestamp (ascending). An image
/// without SpecPMT metadata yields no records.
///
/// # Tie-break contract
///
/// Records with **equal timestamps** (impossible from one live runtime,
/// whose timestamps come from a global atomic counter — but possible
/// across independently-written pools or hand-built images) are ordered
/// by **ascending chain index, then chain position**: chains are scanned
/// in `tid` order and the sort is stable. The parallel merge in
/// [`recover_image_opts`] reproduces this order bit-identically by
/// merging on the key `(ts, chain index)` — within one chain equal
/// timestamps keep append order. Recovery's final image depends on this
/// order, so it is a compatibility contract, not an implementation
/// detail.
pub fn committed_records(image: &CrashImage) -> Vec<LogRecord> {
    let Some(layout) = PoolLayout::read(image) else {
        return Vec::new();
    };
    let mut records = Vec::new();
    for tid in 0..layout.threads() {
        let head = layout.head(image, tid);
        if head != 0 {
            records.extend(parse_chain(image, head, layout.block_bytes()));
        }
    }
    records.sort_by_key(|r| r.ts);
    records
}

/// Repairs `image` in place by replaying all committed records in
/// timestamp order — the serial reference path. [`recover_image_opts`]
/// must (and is tested to) produce a bit-identical image.
pub fn recover_image(image: &mut CrashImage) {
    let records = committed_records(image);
    for rec in &records {
        for e in &rec.entries {
            if e.addr + e.value.len() <= image.len() {
                image.write_bytes(e.addr, &e.value);
            }
        }
    }
}

/// Tuning for [`recover_image_opts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// OS threads parsing log chains (clamped to `1..=chains`). 1 parses
    /// inline on the calling thread.
    pub parse_threads: usize,
    /// Honour a persisted checkpoint record (skip records at or below its
    /// watermark). Off forces the full replay even when a checkpoint
    /// exists — the bench uses that to measure the bound.
    pub use_checkpoint: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        Self { parse_threads: 1, use_checkpoint: true }
    }
}

impl RecoveryOptions {
    /// Options with `parse_threads` workers and the checkpoint honoured.
    #[must_use]
    pub fn parallel(parse_threads: usize) -> Self {
        Self { parse_threads, use_checkpoint: true }
    }

    /// Disables the checkpoint (full replay).
    #[must_use]
    pub fn without_checkpoint(mut self) -> Self {
        self.use_checkpoint = false;
        self
    }
}

/// What a [`recover_image_opts`] run did — the recovery bench's raw
/// material and the source of the deterministic `recovery_sim_ns_*` keys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Chain slots the layout exposed (registration-table capacity).
    pub chains: usize,
    /// Chains that actually held committed records.
    pub chains_nonempty: usize,
    /// Parse workers used (after clamping).
    pub parse_threads: usize,
    /// Committed records parsed across all chains.
    pub records_parsed: usize,
    /// Records replayed (above the checkpoint watermark, or all of them).
    pub records_replayed: usize,
    /// Records skipped because a checkpoint already covers them.
    pub records_skipped_checkpoint: usize,
    /// Log bytes parsed (record headers + payloads), summed over chains.
    pub bytes_parsed: u64,
    /// Largest per-worker share of `bytes_parsed` under the round-robin
    /// chain partition — the parse phase's critical path. Equal-sized
    /// chains give `bytes_parsed / parse_threads`, i.e. linear speedup.
    pub parse_makespan_bytes: u64,
    /// Bytes actually stored into the image (each byte exactly once).
    pub bytes_replayed: u64,
    /// Entry bytes skipped as stale (superseded by a later writer).
    pub bytes_skipped_stale: u64,
    /// A checkpoint was parsed and honoured.
    pub checkpoint_used: bool,
    /// The honoured checkpoint's watermark (0 when none).
    pub checkpoint_watermark: u64,
    /// Runs the honoured checkpoint contributed.
    pub checkpoint_entries: usize,
}

/// Deterministic cost model for the simulated `recovery_sim_ns_*` keys:
/// fixed restart overhead, parse cost on the critical path (the slowest
/// worker), a per-record merge-and-apply step for every record that
/// enters the replay, a much cheaper timestamp-compare visit for records
/// a checkpoint lets replay skip, and per-byte store cost. The constants
/// are calibrated to the same order of magnitude as the simulated device
/// (≈1 ns/byte streaming reads, ≈100 ns of heap work per record) — their
/// exact values matter less than their determinism: the perf gate
/// compares them at the tight 5% tier across hosts.
const SIM_FIXED_NS: u64 = 2_000;
const SIM_PARSE_NS_PER_BYTE: u64 = 2;
const SIM_MERGE_NS_PER_RECORD: u64 = 120;
const SIM_SKIP_NS_PER_RECORD: u64 = 10;
const SIM_REPLAY_NS_PER_BYTE: u64 = 4;

impl RecoveryReport {
    /// Simulated time-to-recover in nanoseconds under the model above.
    /// Parse parallelism shows up through [`Self::parse_makespan_bytes`];
    /// the checkpoint bound shows up through the merge term moving from
    /// every parsed record to only [`Self::records_replayed`] (skipped
    /// records pay just the watermark compare).
    pub fn sim_ns(&self) -> u64 {
        SIM_FIXED_NS
            + self.parse_makespan_bytes * SIM_PARSE_NS_PER_BYTE
            + (self.records_skipped_checkpoint as u64) * SIM_SKIP_NS_PER_RECORD
            + self.replay_sim_ns()
    }

    /// The replay portion of [`Self::sim_ns`] (merge + byte stores) —
    /// the part a checkpoint bounds: with one, it depends only on the
    /// data written since the watermark, not on total log size.
    pub fn replay_sim_ns(&self) -> u64 {
        (self.records_replayed as u64) * SIM_MERGE_NS_PER_RECORD
            + self.bytes_replayed * SIM_REPLAY_NS_PER_BYTE
    }
}

/// Per-chain parse results, in chain-index order.
struct ParsedChains {
    records: Vec<Vec<LogRecord>>,
    bytes_per_chain: Vec<u64>,
    makespan: u64,
}

fn chain_bytes(records: &[LogRecord]) -> u64 {
    records.iter().map(|r| (REC_HDR + r.payload_len()) as u64).sum()
}

/// Parses every chain, `threads`-wide with a deterministic round-robin
/// partition (worker `w` owns chains `w, w + threads, ...`).
fn parse_chains(image: &CrashImage, layout: &PoolLayout, threads: usize) -> ParsedChains {
    let heads: Vec<usize> = (0..layout.threads()).map(|tid| layout.head(image, tid)).collect();
    let block_bytes = layout.block_bytes();
    let workers = threads.clamp(1, heads.len().max(1));
    let mut records: Vec<Vec<LogRecord>> = Vec::with_capacity(heads.len());
    if workers <= 1 {
        for &head in &heads {
            records.push(if head == 0 {
                Vec::new()
            } else {
                parse_chain(image, head, block_bytes)
            });
        }
    } else {
        let mut slots: Vec<Vec<LogRecord>> = (0..heads.len()).map(|_| Vec::new()).collect();
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(workers);
            for w in 0..workers {
                let heads = &heads;
                joins.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut idx = w;
                    while idx < heads.len() {
                        if heads[idx] != 0 {
                            out.push((idx, parse_chain(image, heads[idx], block_bytes)));
                        }
                        idx += workers;
                    }
                    out
                }));
            }
            for j in joins {
                for (idx, recs) in j.join().expect("chain parse worker panicked") {
                    slots[idx] = recs;
                }
            }
        });
        records = slots;
    }
    let bytes_per_chain: Vec<u64> = records.iter().map(|r| chain_bytes(r)).collect();
    // The deterministic makespan of the round-robin partition: the busiest
    // worker's byte total (what the parse phase's wall clock tracks).
    let mut per_worker = vec![0u64; workers];
    for (idx, b) in bytes_per_chain.iter().enumerate() {
        per_worker[idx % workers] += b;
    }
    let makespan = per_worker.into_iter().max().unwrap_or(0);
    ParsedChains { records, bytes_per_chain, makespan }
}

/// K-way merge of per-chain record lists on the key `(ts, chain index)` —
/// bit-identical to [`committed_records`]' concatenate-then-stable-sort
/// order (see the tie-break contract there).
fn merge_chains(chains: Vec<Vec<LogRecord>>) -> Vec<LogRecord> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let total: usize = chains.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<LogRecord>> =
        chains.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    for (idx, it) in iters.iter_mut().enumerate() {
        if let Some(rec) = it.next() {
            heap.push(Reverse((rec.ts, idx, RecordBox(rec))));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, idx, boxed))) = heap.pop() {
        out.push(boxed.0);
        if let Some(rec) = iters[idx].next() {
            heap.push(Reverse((rec.ts, idx, RecordBox(rec))));
        }
    }
    out
}

/// Heap payload wrapper: ordering is fully decided by the `(ts, chain)`
/// prefix of the tuple, so the record itself never needs comparing.
struct RecordBox(LogRecord);

impl PartialEq for RecordBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for RecordBox {}
impl PartialOrd for RecordBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RecordBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// One store the replay phase must apply, in forward replay order.
enum ReplayItem<'a> {
    /// A checkpoint run (replays first; anything else supersedes it).
    Ckpt(&'a crate::record::LogEntry),
    /// A record entry.
    Entry(&'a crate::record::LogEntry),
}

/// Repairs `image` in place — same result as [`recover_image`], computed
/// with parallel chain parsing, a checkpoint-bounded record set, and
/// last-writer-wins byte resolution. Returns the work report.
pub fn recover_image_opts(image: &mut CrashImage, opts: &RecoveryOptions) -> RecoveryReport {
    let mut report =
        RecoveryReport { parse_threads: opts.parse_threads.max(1), ..RecoveryReport::default() };
    let Some(layout) = PoolLayout::read(image) else {
        return report;
    };
    report.chains = layout.threads();

    // Checkpoint first: a torn/unparsable record degrades to full replay.
    let ckpt: Option<CheckpointRecord> = if opts.use_checkpoint {
        let head = layout.ckpt_head(image);
        parse_checkpoint(image, head, layout.block_bytes())
    } else {
        None
    };

    let parsed = parse_chains(image, &layout, opts.parse_threads);
    report.parse_threads = opts.parse_threads.clamp(1, layout.threads().max(1));
    report.chains_nonempty = parsed.records.iter().filter(|r| !r.is_empty()).count();
    report.records_parsed = parsed.records.iter().map(Vec::len).sum();
    report.bytes_parsed = parsed.bytes_per_chain.iter().sum();
    report.parse_makespan_bytes = parsed.makespan;

    let merged = merge_chains(parsed.records);

    // Forward replay order: checkpoint runs, then every record above the
    // watermark. Records at or below it are exactly what the checkpoint
    // folded in, so they are skipped wholesale.
    let watermark = match &ckpt {
        Some(c) => {
            report.checkpoint_used = true;
            report.checkpoint_watermark = c.watermark;
            report.checkpoint_entries = c.entries.len();
            c.watermark
        }
        None => 0,
    };
    let mut forward: Vec<ReplayItem> = Vec::new();
    if let Some(c) = &ckpt {
        forward.extend(c.entries.iter().map(ReplayItem::Ckpt));
    }
    for rec in &merged {
        if report.checkpoint_used && rec.ts <= watermark {
            report.records_skipped_checkpoint += 1;
            continue;
        }
        report.records_replayed += 1;
        forward.extend(rec.entries.iter().map(ReplayItem::Entry));
    }

    // Last-writer-wins: walk the forward order in reverse, claim bytes in
    // a bitmap, store only bytes nobody later (in forward order) wrote.
    // This reproduces "last store wins" without writing any byte twice.
    // The reference path drops any entry that does not fit the image, so
    // the same bounds check is applied *before* claiming.
    let mut claimed = vec![0u64; image.len().div_ceil(64)];
    for item in forward.iter().rev() {
        let e = match item {
            ReplayItem::Ckpt(e) | ReplayItem::Entry(e) => e,
        };
        if e.value.is_empty() || e.addr + e.value.len() > image.len() {
            continue;
        }
        // Claim-and-write per byte; runs of unclaimed bytes are written in
        // one store to keep the common (no-overlap) case cheap.
        let mut run_start: Option<usize> = None;
        for i in 0..e.value.len() {
            let addr = e.addr + i;
            let (word, bit) = (addr / 64, addr % 64);
            let fresh = claimed[word] & (1 << bit) == 0;
            if fresh {
                claimed[word] |= 1 << bit;
                if run_start.is_none() {
                    run_start = Some(i);
                }
            } else if let Some(s) = run_start.take() {
                image.write_bytes(e.addr + s, &e.value[s..i]);
                report.bytes_replayed += (i - s) as u64;
            }
            if !fresh {
                report.bytes_skipped_stale += 1;
            }
        }
        if let Some(s) = run_start.take() {
            image.write_bytes(e.addr + s, &e.value[s..]);
            report.bytes_replayed += (e.value.len() - s) as u64;
        }
    }
    report
}

/// A persisted commit *receipt* whose commit timestamp exceeds every
/// committed log record **and** the checkpoint watermark.
///
/// Receipts are staged only after their commit fence returns, so a
/// persisted receipt proves its record was durable first; a violation is
/// therefore direct evidence of a receipt-before-fence ordering bug (the
/// class the PR-7 group-commit fix closed). The flight recorder turns
/// that invariant into a post-crash check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForensicViolation {
    /// Ring (thread) that staged the receipt.
    pub tid: u16,
    /// Per-ring sequence number of the offending event.
    pub seq: u32,
    /// The receipt's commit timestamp — ahead of every durable record.
    pub commit_ts: u64,
    /// Crash-site name of the fence the receipt claims completed
    /// (decoded from the event's `b` operand).
    pub site: &'static str,
}

/// A transaction the event record shows as open at the crash: a
/// `tx_begin` with no later `tx_commit`/`tx_abort` on the same ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForensicInFlight {
    /// Ring (thread) with the open transaction or KV operation.
    pub tid: u16,
    /// Device-local ns timestamp of the open `tx_begin` (0 when only a
    /// KV op is open — the shard began no durable transaction yet).
    pub begin_ts: u64,
    /// Op class of an open KV dispatch (`kv_op` with no `kv_op_done`),
    /// e.g. `"cas"`. `None` for plain transactional work.
    pub kv_op: Option<&'static str>,
}

/// What the black box said: the decode + analysis of a crash image's
/// flight-recorder region, produced by [`forensics`].
///
/// Torn ring slots are *counted*, never fatal — forensics degrades, the
/// pool still recovers. An image without a recorder region (recorder off,
/// or a pre-v3 layout) yields a report with
/// [`recorder_present`](Self::recorder_present) `false` and nothing else.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ForensicReport {
    /// A valid black-box region was found and decoded.
    pub recorder_present: bool,
    /// Rings in the region (threads + 1 daemon ring).
    pub rings: usize,
    /// Event slots per ring.
    pub capacity: usize,
    /// Checksum-valid events decoded across all rings.
    pub events_decoded: usize,
    /// Slots whose checksum failed (torn at the crash) — skipped.
    pub events_torn: usize,
    /// All surviving events merged on the deterministic `(ts, tid, seq)`
    /// order.
    pub events: Vec<BbEvent>,
    /// Transactions/KV ops the record shows open at the crash.
    pub in_flight: Vec<ForensicInFlight>,
    /// Youngest surviving group-commit batch seal.
    pub last_batch_seal: Option<BbEvent>,
    /// Youngest surviving checkpoint splice.
    pub last_ckpt_splice: Option<BbEvent>,
    /// Commit receipts decoded.
    pub commit_receipts: usize,
    /// Largest commit timestamp among surviving receipts (0 when none).
    pub max_receipt_ts: u64,
    /// Largest commit timestamp among committed log records (0 when none).
    pub max_committed_record_ts: u64,
    /// Parsed checkpoint watermark (0 when no checkpoint survives).
    pub checkpoint_watermark: u64,
    /// Receipt-ahead-of-durability violations (see [`ForensicViolation`]).
    pub violations: Vec<ForensicViolation>,
}

impl ForensicReport {
    /// No ordering violations decoded. Vacuously true when the recorder
    /// is absent.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The last `n` merged events — what an operator reads first.
    pub fn tail(&self, n: usize) -> &[BbEvent] {
        &self.events[self.events.len().saturating_sub(n)..]
    }

    /// Cross-checks the event record against what recovery reported,
    /// returning one line per inconsistency (empty = consistent).
    ///
    /// The checks are necessarily one-sided: events persist lazily (they
    /// ride later fences), so the record may lag durable reality, but it
    /// must never be *ahead* of it.
    pub fn check_against(&self, recovery: &RecoveryReport) -> Vec<String> {
        let mut out = Vec::new();
        if !self.recorder_present {
            return out;
        }
        if recovery.checkpoint_used && recovery.checkpoint_watermark != self.checkpoint_watermark {
            out.push(format!(
                "checkpoint watermark mismatch: recovery honoured {}, forensics parsed {}",
                recovery.checkpoint_watermark, self.checkpoint_watermark
            ));
        }
        // A surviving ckpt_splice is staged only after the new head
        // persisted, and watermarks only grow — the parsed checkpoint can
        // be younger than the event, never older.
        if let Some(ev) = &self.last_ckpt_splice {
            if ev.a > self.checkpoint_watermark {
                out.push(format!(
                    "ckpt_splice event claims watermark {} but only {} is durable",
                    ev.a, self.checkpoint_watermark
                ));
            }
        }
        for v in &self.violations {
            out.push(format!(
                "commit receipt ahead of durability: tid {} seq {} ts {} (site {}, durable max {})",
                v.tid,
                v.seq,
                v.commit_ts,
                v.site,
                self.max_committed_record_ts.max(self.checkpoint_watermark)
            ));
        }
        out
    }
}

impl StatExport for ForensicReport {
    fn export_name(&self) -> &'static str {
        "forensics"
    }

    /// Machine-readable counterpart of the [`fmt::Display`] table: region
    /// geometry and decode counts, the durability frontier, every
    /// violation, the in-flight set, and the merged event tail (capped at
    /// the last 32 events to bound report size).
    fn emit(&self, w: &mut JsonWriter) {
        w.field_bool("recorder_present", self.recorder_present);
        w.field_u64("rings", self.rings as u64);
        w.field_u64("capacity", self.capacity as u64);
        w.field_u64("events_decoded", self.events_decoded as u64);
        w.field_u64("events_torn", self.events_torn as u64);
        w.field_u64("commit_receipts", self.commit_receipts as u64);
        w.field_u64("max_receipt_ts", self.max_receipt_ts);
        w.field_u64("max_committed_record_ts", self.max_committed_record_ts);
        w.field_u64("checkpoint_watermark", self.checkpoint_watermark);
        w.field_bool("clean", self.is_clean());
        w.begin_array_field("violations");
        for v in &self.violations {
            w.begin_object();
            w.field_u64("tid", v.tid as u64);
            w.field_u64("seq", v.seq as u64);
            w.field_u64("commit_ts", v.commit_ts);
            w.field_str("site", v.site);
            w.end_object();
        }
        w.end_array();
        w.begin_array_field("in_flight");
        for f in &self.in_flight {
            w.begin_object();
            w.field_u64("tid", f.tid as u64);
            w.field_u64("begin_ts", f.begin_ts);
            if let Some(op) = f.kv_op {
                w.field_str("kv_op", op);
            }
            w.end_object();
        }
        w.end_array();
        w.begin_array_field("tail");
        for ev in self.tail(32) {
            w.begin_object();
            ev.emit(w);
            w.end_object();
        }
        w.end_array();
    }
}

impl fmt::Display for ForensicReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.recorder_present {
            return writeln!(f, "flight recorder: absent (recorder off or pre-v3 pool)");
        }
        writeln!(
            f,
            "flight recorder: {} rings x {} slots  ({} events, {} torn)",
            self.rings, self.capacity, self.events_decoded, self.events_torn
        )?;
        writeln!(
            f,
            "durability:      max receipt ts {}  max record ts {}  ckpt watermark {}",
            self.max_receipt_ts, self.max_committed_record_ts, self.checkpoint_watermark
        )?;
        match self.violations.len() {
            0 => writeln!(f, "verdict:         clean (no receipt ahead of durability)")?,
            n => {
                writeln!(f, "verdict:         {n} VIOLATION(S)")?;
                for v in &self.violations {
                    writeln!(
                        f,
                        "  tid {:2} seq {:4}: receipt ts {} ahead of durable log (site {})",
                        v.tid, v.seq, v.commit_ts, v.site
                    )?;
                }
            }
        }
        if self.in_flight.is_empty() {
            writeln!(f, "in flight:       none")?;
        } else {
            for fl in &self.in_flight {
                match fl.kv_op {
                    Some(op) => writeln!(
                        f,
                        "in flight:       tid {:2} kv {op} (begin ts {})",
                        fl.tid, fl.begin_ts
                    )?,
                    None => writeln!(
                        f,
                        "in flight:       tid {:2} tx (begin ts {})",
                        fl.tid, fl.begin_ts
                    )?,
                }
            }
        }
        writeln!(f, "event tail (newest last):")?;
        for ev in self.tail(16) {
            writeln!(
                f,
                "  ts {:10} tid {:2} seq {:4} {:14} a={} b={} aux={}",
                ev.ts,
                ev.tid,
                ev.seq,
                ev.kind.name(),
                ev.a,
                ev.b,
                ev.aux
            )?;
        }
        Ok(())
    }
}

/// Decodes a crash image's flight-recorder region and checks the event
/// record against the image's own durable state.
///
/// The black-box base comes from the layout descriptor's v3 slot; the
/// region header (checksummed) gives the geometry; each ring slot
/// validates independently, so torn slots degrade to counts. The
/// durability frontier — `max(max committed record ts, checkpoint
/// watermark)` — is recomputed from the log itself, and every surviving
/// commit receipt is checked against it (see [`ForensicViolation`]).
///
/// Never fails: garbage, recorder-off, and pre-v3 images all return an
/// absent-recorder report.
pub fn forensics(image: &CrashImage) -> ForensicReport {
    let mut rep = ForensicReport::default();
    let Some(layout) = PoolLayout::read(image) else {
        return rep;
    };
    let base = layout.bbox_head(image);
    if base == 0 || base.saturating_add(REGION_HDR) > image.len() {
        return rep;
    }
    let Some((rings, capacity)) = decode_region_header(image.read_bytes(base, REGION_HDR)) else {
        return rep;
    };
    let total = region_bytes(rings, capacity);
    if base.saturating_add(total) > image.len() {
        return rep;
    }
    let Some(region) = decode_region(image.read_bytes(base, total)) else {
        return rep;
    };
    rep.recorder_present = true;
    rep.rings = rings;
    rep.capacity = capacity;
    rep.events_decoded = region.decoded();
    rep.events_torn = region.torn();
    rep.events = region.merged();

    // The durability frontier, from the image's own log: receipts may
    // lawfully lag it (they persist lazily) but never lead it.
    rep.max_committed_record_ts = committed_records(image).last().map_or(0, |r| r.ts);
    rep.checkpoint_watermark =
        parse_checkpoint(image, layout.ckpt_head(image), layout.block_bytes())
            .map_or(0, |c| c.watermark);
    let frontier = rep.max_committed_record_ts.max(rep.checkpoint_watermark);

    let mut open_tx: BTreeMap<u16, u64> = BTreeMap::new();
    let mut open_kv: BTreeMap<u16, u8> = BTreeMap::new();
    for ev in &rep.events {
        match ev.kind {
            BbKind::TxBegin => {
                open_tx.insert(ev.tid, ev.ts);
            }
            BbKind::TxCommit => {
                open_tx.remove(&ev.tid);
                rep.commit_receipts += 1;
                rep.max_receipt_ts = rep.max_receipt_ts.max(ev.a);
                if ev.a > frontier {
                    rep.violations.push(ForensicViolation {
                        tid: ev.tid,
                        seq: ev.seq,
                        commit_ts: ev.a,
                        site: sites::name_of(ev.b as usize).unwrap_or("unknown"),
                    });
                }
            }
            BbKind::TxAbort => {
                open_tx.remove(&ev.tid);
            }
            BbKind::KvOp => {
                open_kv.insert(ev.tid, ev.aux);
            }
            BbKind::KvOpDone => {
                open_kv.remove(&ev.tid);
            }
            BbKind::BatchSeal => rep.last_batch_seal = Some(*ev),
            BbKind::CkptSplice => rep.last_ckpt_splice = Some(*ev),
            _ => {}
        }
    }
    let mut tids: Vec<u16> = open_tx.keys().chain(open_kv.keys()).copied().collect();
    tids.sort_unstable();
    tids.dedup();
    rep.in_flight = tids
        .into_iter()
        .map(|tid| ForensicInFlight {
            tid,
            begin_ts: open_tx.get(&tid).copied().unwrap_or(0),
            kv_op: open_kv.get(&tid).map(|&aux| kv_op_name(aux)),
        })
        .collect();
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::CrashControl;

    #[test]
    fn non_specpmt_image_is_untouched() {
        let mut img = CrashImage::new(vec![0xCD; 4096]);
        let before = img.clone();
        recover_image(&mut img);
        assert_eq!(img, before);
        let mut img2 = before.clone();
        let report = recover_image_opts(&mut img2, &RecoveryOptions::parallel(4));
        assert_eq!(img2, before);
        assert_eq!(report, RecoveryReport { parse_threads: 4, ..RecoveryReport::default() });
    }

    #[test]
    fn empty_pool_image_recovers_to_itself() {
        let pool = specpmt_pmem::PmemPool::create(specpmt_pmem::PmemDevice::new(
            specpmt_pmem::PmemConfig::new(1 << 16),
        ));
        let mut img = pool.device().capture(specpmt_pmem::CrashPolicy::AllSurvive);
        let before = img.clone();
        recover_image(&mut img);
        assert_eq!(img, before);
        let mut img2 = before.clone();
        recover_image_opts(&mut img2, &RecoveryOptions::default());
        assert_eq!(img2, before);
    }

    #[test]
    fn sim_model_rewards_parallel_parse_and_checkpoint_bound() {
        let full = RecoveryReport {
            chains: 8,
            parse_threads: 1,
            records_parsed: 1000,
            records_replayed: 1000,
            bytes_parsed: 80_000,
            parse_makespan_bytes: 80_000,
            bytes_replayed: 40_000,
            ..RecoveryReport::default()
        };
        let parallel = RecoveryReport { parse_threads: 8, parse_makespan_bytes: 10_000, ..full };
        assert!(parallel.sim_ns() < full.sim_ns());
        let ckpt = RecoveryReport {
            records_replayed: 50,
            records_skipped_checkpoint: 950,
            checkpoint_used: true,
            ..full
        };
        // Same parse and byte-store work, but 950 records downgrade from
        // the merge-and-apply charge to the watermark-compare charge.
        assert!(ckpt.sim_ns() < full.sim_ns());
        assert!(ckpt.replay_sim_ns() < full.replay_sim_ns());
        // The replay portion ignores log size entirely: doubling parse
        // work moves sim_ns but not replay_sim_ns.
        let bigger_log =
            RecoveryReport { bytes_parsed: 160_000, parse_makespan_bytes: 160_000, ..ckpt };
        assert_eq!(bigger_log.replay_sim_ns(), ckpt.replay_sim_ns());
    }
}
