//! Post-crash recovery for software SpecPMT.
//!
//! Recovery is intentionally simple (Section 3.1): walk every thread's log
//! chain from its persistent head pointer, keep only checksum-valid
//! (= committed) records, then replay all entries across threads in commit
//! timestamp order. Replaying effectively:
//!
//! * **redoes** committed transactions whose in-place data writes never
//!   reached PM (the speculative log holds the committed values), and
//! * **undoes** interrupted transactions whose in-place writes *did* reach
//!   PM (the freshest committed record for each byte is replayed last).
//!
//! Unreclaimed stale records may replay too; they are overwritten by
//! fresher records later in the order, which is harmless.

use specpmt_pmem::CrashImage;

use crate::layout::PoolLayout;
use crate::record::{parse_chain, LogRecord};

/// Parses every thread's committed records from a crash image.
///
/// The pool's [`PoolLayout`] (dynamic descriptor or legacy fixed root
/// slots) determines how many chains exist and where their heads live.
/// Returns records sorted by commit timestamp (ascending). An image
/// without SpecPMT metadata yields no records.
pub fn committed_records(image: &CrashImage) -> Vec<LogRecord> {
    let Some(layout) = PoolLayout::read(image) else {
        return Vec::new();
    };
    let mut records = Vec::new();
    for tid in 0..layout.threads() {
        let head = layout.head(image, tid);
        if head != 0 {
            records.extend(parse_chain(image, head, layout.block_bytes()));
        }
    }
    records.sort_by_key(|r| r.ts);
    records
}

/// Repairs `image` in place by replaying all committed records in
/// timestamp order.
pub fn recover_image(image: &mut CrashImage) {
    let records = committed_records(image);
    for rec in &records {
        for e in &rec.entries {
            if e.addr + e.value.len() <= image.len() {
                image.write_bytes(e.addr, &e.value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::CrashControl;

    #[test]
    fn non_specpmt_image_is_untouched() {
        let mut img = CrashImage::new(vec![0xCD; 4096]);
        let before = img.clone();
        recover_image(&mut img);
        assert_eq!(img, before);
    }

    #[test]
    fn empty_pool_image_recovers_to_itself() {
        let pool = specpmt_pmem::PmemPool::create(specpmt_pmem::PmemDevice::new(
            specpmt_pmem::PmemConfig::new(1 << 16),
        ));
        let mut img = pool.device().capture(specpmt_pmem::CrashPolicy::AllSurvive);
        let before = img.clone();
        recover_image(&mut img);
        assert_eq!(img, before);
    }
}
