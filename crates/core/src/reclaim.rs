//! Log reclamation support: the byte-granular freshness index.
//!
//! The paper's background reclamator uses a volatile hash table, keyed by
//! datum address, to decide whether a log record is *stale* (every byte it
//! covers is also covered by a younger committed record) and can be
//! dropped. The table is volatile on purpose: it is rebuilt from the log if
//! a crash interrupts reclamation, so it needs no crash consistency of its
//! own.
//!
//! Freshness must consider **committed records of all threads** — an entry
//! may only be dropped when a younger committed record covers its bytes,
//! never because of an in-flight transaction (the same requirement that
//! motivates Fig. 11's epoch-overlap rule in the hardware design).
//!
//! # Incremental cycles
//!
//! A naive cycle re-parses every chain from PM and rebuilds the index from
//! scratch — O(total log) even when nothing happened since the last cycle.
//! [`ReclaimState`] makes cycles incremental:
//!
//! * each chain carries a **change watermark** `(head, generation)`
//!   ([`crate::record::LogArea::generation`]); a chain whose watermark has
//!   not moved since the last cycle is not re-parsed — its cached parse is
//!   reused;
//! * the [`FreshnessIndex`] **persists across cycles** and is only *fed*
//!   the newly parsed records. This is sound because the index fold is
//!   monotone ([`FreshnessIndex::insert_record`]): entries for records that
//!   a rewrite has since dropped may linger, but a dropped record is by
//!   definition covered by a younger retained one, so no freshness verdict
//!   ever depends on vanished data;
//! * when **no** chain changed, the whole cycle is a no-op: the index is
//!   unchanged, so every chain that the previous cycle left fully fresh is
//!   still fully fresh — skipping is always the safe side (a skipped
//!   compaction only delays garbage collection, never corrupts recovery);
//! * a chain whose compaction drops nothing is **not rewritten** (no new
//!   blocks, no splice fences).

use std::collections::HashMap;

use specpmt_telemetry::{JsonWriter, StatExport};

use crate::record::{LogEntry, LogRecord, REC_HDR};

/// Volatile index mapping each logged byte address to the youngest commit
/// timestamp that wrote it.
#[derive(Debug, Clone, Default)]
pub struct FreshnessIndex {
    newest: HashMap<usize, u64>,
}

impl FreshnessIndex {
    /// Builds the index from committed records (any order, any thread).
    pub fn build<'a>(records: impl IntoIterator<Item = &'a LogRecord>) -> Self {
        let mut idx = Self::default();
        for rec in records {
            idx.insert_record(rec);
        }
        idx
    }

    /// Folds one committed record into the index. The fold is monotone
    /// (each byte keeps its *youngest* covering timestamp), so inserting a
    /// record twice — or re-inserting records that survive a compaction —
    /// is idempotent. This is what makes incremental maintenance safe: the
    /// index may retain entries for records that were since dropped, but a
    /// dropped record is by definition covered by a younger *retained*
    /// one, so freshness decisions never rely on vanished data.
    pub fn insert_record(&mut self, rec: &LogRecord) {
        for e in &rec.entries {
            for i in 0..e.value.len() {
                let slot = self.newest.entry(e.addr + i).or_insert(0);
                if rec.ts > *slot {
                    *slot = rec.ts;
                }
            }
        }
    }

    /// Youngest commit timestamp covering `addr`, if any.
    pub fn newest_ts(&self, addr: usize) -> Option<u64> {
        self.newest.get(&addr).copied()
    }

    /// Whether `entry` at commit time `ts` is fresh: at least one of its
    /// bytes has no younger committed record.
    pub fn is_fresh(&self, ts: u64, entry: &LogEntry) -> bool {
        (0..entry.value.len()).any(|i| self.newest.get(&(entry.addr + i)).is_none_or(|&n| n <= ts))
    }

    /// Filters a record down to its fresh entries, preserving order.
    /// Returns `None` when nothing survives (the whole record is stale).
    /// The second component counts dropped entries.
    pub fn compact_record(&self, rec: &LogRecord) -> (Option<LogRecord>, u64) {
        let kept: Vec<LogEntry> =
            rec.entries.iter().filter(|e| self.is_fresh(rec.ts, e)).cloned().collect();
        let dropped = (rec.entries.len() - kept.len()) as u64;
        if kept.is_empty() {
            (None, dropped)
        } else {
            (Some(LogRecord { ts: rec.ts, entries: kept }), dropped)
        }
    }

    /// Number of distinct bytes tracked.
    pub fn tracked_bytes(&self) -> usize {
        self.newest.len()
    }
}

/// Observability counters for the incremental reclamator. All counters
/// are cumulative over the runtime's lifetime except
/// [`ReclaimStats::last_cycle_ns`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Reclamation cycles run (including no-op cycles).
    pub cycles: u64,
    /// Cycles where no chain's watermark had moved: the whole cycle was a
    /// scan-free, rewrite-free no-op.
    pub noop_cycles: u64,
    /// Chains parsed from PM (watermark moved since the last cycle).
    pub chains_scanned: u64,
    /// Chain scans skipped because the `(head, generation)` watermark was
    /// unchanged — the cached parse was reused.
    pub chains_skipped: u64,
    /// Chains rewritten (compaction dropped at least one entry).
    pub chains_rewritten: u64,
    /// Chain rewrites skipped because compaction dropped nothing — no new
    /// blocks were written and no splice fences were issued.
    pub rewrites_skipped: u64,
    /// Entries kept across all compaction passes.
    pub records_kept: u64,
    /// Entries dropped as stale across all compaction passes.
    pub records_dropped: u64,
    /// Log bytes (record headers + payload) reclaimed by compaction.
    pub bytes_reclaimed: u64,
    /// Simulated duration of the most recent cycle, in nanoseconds.
    pub last_cycle_ns: u64,
}

impl ReclaimStats {
    /// Difference `self - earlier`, for measuring a phase. Cumulative
    /// counters use saturating subtraction (crossed snapshots clamp to 0
    /// instead of wrapping); the gauge [`ReclaimStats::last_cycle_ns`] is
    /// carried over from `self` unchanged.
    #[must_use]
    pub fn delta_since(&self, earlier: &ReclaimStats) -> ReclaimStats {
        ReclaimStats {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            noop_cycles: self.noop_cycles.saturating_sub(earlier.noop_cycles),
            chains_scanned: self.chains_scanned.saturating_sub(earlier.chains_scanned),
            chains_skipped: self.chains_skipped.saturating_sub(earlier.chains_skipped),
            chains_rewritten: self.chains_rewritten.saturating_sub(earlier.chains_rewritten),
            rewrites_skipped: self.rewrites_skipped.saturating_sub(earlier.rewrites_skipped),
            records_kept: self.records_kept.saturating_sub(earlier.records_kept),
            records_dropped: self.records_dropped.saturating_sub(earlier.records_dropped),
            bytes_reclaimed: self.bytes_reclaimed.saturating_sub(earlier.bytes_reclaimed),
            last_cycle_ns: self.last_cycle_ns,
        }
    }
}

impl StatExport for ReclaimStats {
    fn export_name(&self) -> &'static str {
        "reclaim"
    }

    fn emit(&self, w: &mut JsonWriter) {
        w.field_u64("cycles", self.cycles);
        w.field_u64("noop_cycles", self.noop_cycles);
        w.field_u64("chains_scanned", self.chains_scanned);
        w.field_u64("chains_skipped", self.chains_skipped);
        w.field_u64("chains_rewritten", self.chains_rewritten);
        w.field_u64("rewrites_skipped", self.rewrites_skipped);
        w.field_u64("records_kept", self.records_kept);
        w.field_u64("records_dropped", self.records_dropped);
        w.field_u64("bytes_reclaimed", self.bytes_reclaimed);
        w.field_u64("last_cycle_ns", self.last_cycle_ns);
    }
}

/// Per-chain scan cache: the watermark the cache was taken at plus the
/// committed records parsed then. Volatile, like the index — rebuilt after
/// a crash.
#[derive(Debug, Default)]
struct ChainCache {
    /// `(head, generation)` of the chain when `records` was captured;
    /// `None` forces a re-parse.
    mark: Option<(usize, u64)>,
    records: Vec<LogRecord>,
}

/// Volatile state carried across reclamation cycles: the persistent
/// freshness index, per-chain scan caches with change watermarks, and the
/// observability counters. See the module docs for why reusing all of this
/// across cycles is sound.
#[derive(Debug, Default)]
pub struct ReclaimState {
    index: FreshnessIndex,
    chains: Vec<ChainCache>,
    /// Cycle counters, surfaced through the runtimes' observability APIs.
    pub stats: ReclaimStats,
}

impl ReclaimState {
    /// Grows the per-chain cache vector to cover `n` chains.
    pub fn ensure_chains(&mut self, n: usize) {
        if self.chains.len() < n {
            self.chains.resize_with(n, ChainCache::default);
        }
    }

    /// Drops all cached state (indexes and watermarks), e.g. after
    /// [`switch-out`](crate::runtime::SpecSpmt::switch_out) truncates the
    /// log. Counters are preserved.
    pub fn reset(&mut self) {
        self.index = FreshnessIndex::default();
        for c in &mut self.chains {
            c.mark = None;
            c.records.clear();
        }
    }

    /// Forces chain `tid` to be re-parsed on the next cycle (used for
    /// chains that were skipped mid-cycle, e.g. because a transaction was
    /// open on them).
    pub fn invalidate_chain(&mut self, tid: usize) {
        self.ensure_chains(tid + 1);
        self.chains[tid].mark = None;
        self.chains[tid].records.clear();
    }

    /// Whether chain `tid`'s cached parse is still valid for watermark
    /// `mark`.
    pub fn is_current(&self, tid: usize, mark: (usize, u64)) -> bool {
        self.chains.get(tid).is_some_and(|c| c.mark == Some(mark))
    }

    /// Installs a fresh parse of chain `tid` taken at watermark `mark`,
    /// folding the records into the persistent freshness index.
    pub fn install_parse(&mut self, tid: usize, mark: (usize, u64), records: Vec<LogRecord>) {
        self.ensure_chains(tid + 1);
        for r in &records {
            self.index.insert_record(r);
        }
        let c = &mut self.chains[tid];
        c.records = records;
        c.mark = Some(mark);
    }

    /// Compacts chain `tid`'s cached records against the current index.
    /// Returns `(kept records, dropped entry count, log bytes reclaimed)`;
    /// a zero drop count means the chain needs no rewrite.
    pub fn compact_chain(&self, tid: usize) -> (Vec<LogRecord>, u64, u64) {
        let mut kept_all = Vec::new();
        let mut dropped = 0u64;
        let mut bytes = 0u64;
        for rec in &self.chains[tid].records {
            let before = (REC_HDR + rec.payload_len()) as u64;
            let (kept, d) = self.index.compact_record(rec);
            dropped += d;
            match kept {
                Some(k) => {
                    bytes += before - (REC_HDR + k.payload_len()) as u64;
                    kept_all.push(k);
                }
                None => bytes += before,
            }
        }
        (kept_all, dropped, bytes)
    }

    /// Records that chain `tid` was rewritten to exactly `kept` at the new
    /// watermark `mark`, so the next cycle can skip re-parsing it.
    pub fn commit_rewrite(&mut self, tid: usize, mark: (usize, u64), kept: Vec<LogRecord>) {
        self.ensure_chains(tid + 1);
        let c = &mut self.chains[tid];
        c.records = kept;
        c.mark = Some(mark);
    }

    /// The persistent freshness index.
    pub fn index(&self) -> &FreshnessIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, addr: usize, value: &[u8]) -> LogRecord {
        LogRecord { ts, entries: vec![LogEntry { addr, value: value.to_vec() }] }
    }

    #[test]
    fn younger_record_stales_older() {
        let r1 = rec(1, 0, &[1, 1]);
        let r2 = rec(2, 0, &[2, 2]);
        let idx = FreshnessIndex::build([&r1, &r2]);
        let (kept, dropped) = idx.compact_record(&r1);
        assert!(kept.is_none());
        assert_eq!(dropped, 1);
        let (kept, dropped) = idx.compact_record(&r2);
        assert_eq!(kept.unwrap(), r2);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn partial_overlap_keeps_older_entry() {
        // r1 covers [0, 4); r2 only covers [0, 2): r1 still owns bytes 2-3.
        let r1 = rec(1, 0, &[1; 4]);
        let r2 = rec(2, 0, &[2; 2]);
        let idx = FreshnessIndex::build([&r1, &r2]);
        let (kept, _) = idx.compact_record(&r1);
        assert_eq!(kept.unwrap(), r1);
    }

    #[test]
    fn cross_thread_coverage_counts() {
        // Records from different threads are just records with a global ts.
        let mine = rec(3, 64, &[1; 8]);
        let other = rec(9, 64, &[2; 8]);
        let idx = FreshnessIndex::build([&mine, &other]);
        assert!(idx.compact_record(&mine).0.is_none());
    }

    #[test]
    fn multi_entry_record_partially_compacts() {
        let r1 = LogRecord {
            ts: 1,
            entries: vec![
                LogEntry { addr: 0, value: vec![1] },
                LogEntry { addr: 8, value: vec![1] },
            ],
        };
        let r2 = rec(2, 0, &[2]);
        let idx = FreshnessIndex::build([&r1, &r2]);
        let (kept, dropped) = idx.compact_record(&r1);
        let kept = kept.unwrap();
        assert_eq!(kept.entries.len(), 1);
        assert_eq!(kept.entries[0].addr, 8);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn reclaim_state_watermarks_cache_and_compact() {
        use crate::record::ENTRY_HDR;
        let mut st = ReclaimState::default();
        st.ensure_chains(2);
        assert!(!st.is_current(0, (64, 0)));
        let r1 = rec(1, 0, &[1; 4]);
        st.install_parse(0, (64, 3), vec![r1.clone()]);
        assert!(st.is_current(0, (64, 3)));
        assert!(!st.is_current(0, (64, 4)), "generation bump must invalidate");
        assert!(!st.is_current(0, (65, 3)), "head move must invalidate");
        // Nothing younger anywhere: chain 0 is fully fresh, no rewrite.
        let (kept, dropped, bytes) = st.compact_chain(0);
        assert_eq!(kept, vec![r1.clone()]);
        assert_eq!((dropped, bytes), (0, 0));
        // A younger record arriving on *another* chain stales the cached
        // record of chain 0 through the persistent index.
        st.install_parse(1, (128, 1), vec![rec(2, 0, &[2; 4])]);
        let (kept, dropped, bytes) = st.compact_chain(0);
        assert!(kept.is_empty());
        assert_eq!(dropped, 1);
        assert_eq!(bytes, (REC_HDR + ENTRY_HDR + 4) as u64);
        st.commit_rewrite(0, (256, 0), kept);
        assert!(st.is_current(0, (256, 0)));
        st.invalidate_chain(0);
        assert!(!st.is_current(0, (256, 0)));
        st.reset();
        assert_eq!(st.index().tracked_bytes(), 0);
    }

    #[test]
    fn newest_ts_lookup() {
        let r = rec(7, 100, &[1]);
        let idx = FreshnessIndex::build([&r]);
        assert_eq!(idx.newest_ts(100), Some(7));
        assert_eq!(idx.newest_ts(101), None);
        assert_eq!(idx.tracked_bytes(), 1);
    }
}
