//! Log reclamation support: the byte-granular freshness index.
//!
//! The paper's background reclamator uses a volatile hash table, keyed by
//! datum address, to decide whether a log record is *stale* (every byte it
//! covers is also covered by a younger committed record) and can be
//! dropped. The table is volatile on purpose: it is rebuilt from the log if
//! a crash interrupts reclamation, so it needs no crash consistency of its
//! own.
//!
//! Freshness must consider **committed records of all threads** — an entry
//! may only be dropped when a younger committed record covers its bytes,
//! never because of an in-flight transaction (the same requirement that
//! motivates Fig. 11's epoch-overlap rule in the hardware design).

use std::collections::HashMap;

use crate::record::{LogEntry, LogRecord};

/// Volatile index mapping each logged byte address to the youngest commit
/// timestamp that wrote it.
#[derive(Debug, Clone, Default)]
pub struct FreshnessIndex {
    newest: HashMap<usize, u64>,
}

impl FreshnessIndex {
    /// Builds the index from committed records (any order, any thread).
    pub fn build<'a>(records: impl IntoIterator<Item = &'a LogRecord>) -> Self {
        let mut newest: HashMap<usize, u64> = HashMap::new();
        for rec in records {
            for e in &rec.entries {
                for i in 0..e.value.len() {
                    let slot = newest.entry(e.addr + i).or_insert(0);
                    if rec.ts > *slot {
                        *slot = rec.ts;
                    }
                }
            }
        }
        Self { newest }
    }

    /// Youngest commit timestamp covering `addr`, if any.
    pub fn newest_ts(&self, addr: usize) -> Option<u64> {
        self.newest.get(&addr).copied()
    }

    /// Whether `entry` at commit time `ts` is fresh: at least one of its
    /// bytes has no younger committed record.
    pub fn is_fresh(&self, ts: u64, entry: &LogEntry) -> bool {
        (0..entry.value.len()).any(|i| self.newest.get(&(entry.addr + i)).is_none_or(|&n| n <= ts))
    }

    /// Filters a record down to its fresh entries, preserving order.
    /// Returns `None` when nothing survives (the whole record is stale).
    /// The second component counts dropped entries.
    pub fn compact_record(&self, rec: &LogRecord) -> (Option<LogRecord>, u64) {
        let kept: Vec<LogEntry> =
            rec.entries.iter().filter(|e| self.is_fresh(rec.ts, e)).cloned().collect();
        let dropped = (rec.entries.len() - kept.len()) as u64;
        if kept.is_empty() {
            (None, dropped)
        } else {
            (Some(LogRecord { ts: rec.ts, entries: kept }), dropped)
        }
    }

    /// Number of distinct bytes tracked.
    pub fn tracked_bytes(&self) -> usize {
        self.newest.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, addr: usize, value: &[u8]) -> LogRecord {
        LogRecord { ts, entries: vec![LogEntry { addr, value: value.to_vec() }] }
    }

    #[test]
    fn younger_record_stales_older() {
        let r1 = rec(1, 0, &[1, 1]);
        let r2 = rec(2, 0, &[2, 2]);
        let idx = FreshnessIndex::build([&r1, &r2]);
        let (kept, dropped) = idx.compact_record(&r1);
        assert!(kept.is_none());
        assert_eq!(dropped, 1);
        let (kept, dropped) = idx.compact_record(&r2);
        assert_eq!(kept.unwrap(), r2);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn partial_overlap_keeps_older_entry() {
        // r1 covers [0, 4); r2 only covers [0, 2): r1 still owns bytes 2-3.
        let r1 = rec(1, 0, &[1; 4]);
        let r2 = rec(2, 0, &[2; 2]);
        let idx = FreshnessIndex::build([&r1, &r2]);
        let (kept, _) = idx.compact_record(&r1);
        assert_eq!(kept.unwrap(), r1);
    }

    #[test]
    fn cross_thread_coverage_counts() {
        // Records from different threads are just records with a global ts.
        let mine = rec(3, 64, &[1; 8]);
        let other = rec(9, 64, &[2; 8]);
        let idx = FreshnessIndex::build([&mine, &other]);
        assert!(idx.compact_record(&mine).0.is_none());
    }

    #[test]
    fn multi_entry_record_partially_compacts() {
        let r1 = LogRecord {
            ts: 1,
            entries: vec![
                LogEntry { addr: 0, value: vec![1] },
                LogEntry { addr: 8, value: vec![1] },
            ],
        };
        let r2 = rec(2, 0, &[2]);
        let idx = FreshnessIndex::build([&r1, &r2]);
        let (kept, dropped) = idx.compact_record(&r1);
        let kept = kept.unwrap();
        assert_eq!(kept.entries.len(), 1);
        assert_eq!(kept.entries[0].addr, 8);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn newest_ts_lookup() {
        let r = rec(7, 100, &[1]);
        let idx = FreshnessIndex::build([&r]);
        assert_eq!(idx.newest_ts(100), Some(7));
        assert_eq!(idx.newest_ts(101), None);
        assert_eq!(idx.tracked_bytes(), 1);
    }
}
