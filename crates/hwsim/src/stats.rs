//! Counters for the hardware model.

/// Event counters accumulated by a [`crate::HwCore`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HwStats {
    /// L1 data cache hits.
    pub l1_hits: u64,
    /// L1 misses that hit in L2.
    pub l2_hits: u64,
    /// L2 misses (memory accesses).
    pub mem_accesses: u64,
    /// Dirty L1 evictions.
    pub l1_dirty_evictions: u64,
    /// L1 TLB hits.
    pub tlb_l1_hits: u64,
    /// L2 TLB hits.
    pub tlb_l2_hits: u64,
    /// Page walks.
    pub tlb_misses: u64,
    /// Pages that transitioned cold → hot.
    pub pages_made_hot: u64,
    /// Bulk page copies performed by the copy engine.
    pub bulk_copies: u64,
    /// Commit-time L1 scans.
    pub commit_scans: u64,
    /// `clearepoch` executions.
    pub epochs_cleared: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = HwStats::default();
        assert_eq!(s.l1_hits + s.l2_hits + s.mem_accesses, 0);
    }
}
