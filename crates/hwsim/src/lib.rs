//! Microarchitectural timing model for hardware SpecPMT (Section 5).
//!
//! The paper evaluates its hardware designs on Gem5 + Ruby with the Table 1
//! configuration; this crate is the event-level Rust substitute. It models
//! the components the hardware transaction designs actually exercise:
//!
//! * [`cache::SetAssocCache`] — L1D (32 KB / 8-way / 2 cycles) and a shared
//!   L2 (2 MB / 12-way / 20 cycles), LRU, with the two SpecPMT flag bits
//!   per L1 line: **PBit** (needs persistence on eviction) and **LogBit**
//!   (needs speculative logging at commit/eviction).
//! * [`tlb::TwoLevelTlb`] — L1 (64-entry / 8-way) and L2 (1536-entry /
//!   12-way) TLBs, each entry extended with the **EpochBit** and the 3-bit
//!   saturating hotness counter that doubles as the epoch ID
//!   (Fig. 9). The `startepoch`/`clearepoch` instructions operate here.
//! * [`core::HwCore`] — drives both, charges hit/miss/page-walk latencies
//!   (at picosecond resolution on a 4 GHz core) to the shared
//!   [`specpmt_pmem::PmemDevice`] clock, and reports eviction events so the
//!   transaction models in `specpmt-hwtx` can apply their policies
//!   (write-back-to-WPQ, speculative-log-before-eviction, …).
//!
//! Persistence timing (WPQ occupancy, media bandwidth, fences) stays in
//! `specpmt-pmem`; this crate decides *which* lines move *when*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod core;
pub mod stats;
pub mod tlb;

pub use cache::{EvictedLine, SetAssocCache};
pub use config::HwConfig;
pub use core::{Access, HwCore};
pub use stats::HwStats;
pub use tlb::{TlbEntry, TlbLookup, TwoLevelTlb};
