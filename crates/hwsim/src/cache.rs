//! Set-associative cache with SpecPMT's per-line flag bits.

/// Cache line size in bytes.
pub const LINE: usize = 64;

/// One resident cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LineState {
    /// Line-aligned byte address.
    addr: usize,
    dirty: bool,
    /// PBit: must persist on eviction (inside or outside transactions).
    pbit: bool,
    /// LogBit: needs speculative logging at commit or eviction.
    logbit: bool,
    /// LRU stamp (higher = more recent).
    lru: u64,
}

/// A line evicted to make room, reported to the policy layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line-aligned byte address.
    pub addr: usize,
    /// Whether the line was dirty.
    pub dirty: bool,
    /// PBit at eviction.
    pub pbit: bool,
    /// LogBit at eviction.
    pub logbit: bool,
}

/// LRU set-associative cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    lines: Vec<Option<LineState>>,
    tick: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "degenerate cache geometry");
        Self { sets, ways, lines: vec![None; sets * ways], tick: 0 }
    }

    fn set_of(&self, line_addr: usize) -> usize {
        (line_addr / LINE) % self.sets
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `line_addr` without touching LRU state.
    pub fn contains(&self, line_addr: usize) -> bool {
        let set = self.set_of(line_addr);
        self.lines[self.slot_range(set)].iter().any(|l| l.is_some_and(|l| l.addr == line_addr))
    }

    /// Accesses a line (filling it on miss). Returns `(hit, evicted)`.
    pub fn access(&mut self, line_addr: usize, write: bool) -> (bool, Option<EvictedLine>) {
        debug_assert_eq!(line_addr % LINE, 0, "line address must be aligned");
        self.tick += 1;
        let set = self.set_of(line_addr);
        let range = self.slot_range(set);
        // Hit?
        for i in range.clone() {
            if let Some(l) = self.lines[i].as_mut() {
                if l.addr == line_addr {
                    l.lru = self.tick;
                    l.dirty |= write;
                    return (true, None);
                }
            }
        }
        // Miss: fill, evicting LRU if the set is full.
        let mut victim = None;
        for i in range.clone() {
            match &self.lines[i] {
                None => {
                    victim = Some((i, None));
                    break;
                }
                Some(l) => match victim {
                    Some((_, Some(LineState { lru, .. }))) if l.lru >= lru => {}
                    Some((_, None)) => {}
                    _ => victim = Some((i, Some(*l))),
                },
            }
        }
        let (slot, old) = victim.expect("set has at least one way");
        let evicted = old.map(|l| EvictedLine {
            addr: l.addr,
            dirty: l.dirty,
            pbit: l.pbit,
            logbit: l.logbit,
        });
        self.lines[slot] = Some(LineState {
            addr: line_addr,
            dirty: write,
            pbit: false,
            logbit: false,
            lru: self.tick,
        });
        (false, evicted)
    }

    /// Sets the SpecPMT flag bits on a resident line (no-op if absent).
    pub fn set_flags(&mut self, line_addr: usize, pbit: bool, logbit: bool) {
        let set = self.set_of(line_addr);
        for i in self.slot_range(set) {
            if let Some(l) = self.lines[i].as_mut() {
                if l.addr == line_addr {
                    l.pbit |= pbit;
                    l.logbit |= logbit;
                    return;
                }
            }
        }
    }

    /// Returns the flags of a resident line: `(dirty, pbit, logbit)`.
    pub fn flags(&self, line_addr: usize) -> Option<(bool, bool, bool)> {
        let set = self.set_of(line_addr);
        for i in self.slot_range(set) {
            if let Some(l) = &self.lines[i] {
                if l.addr == line_addr {
                    return Some((l.dirty, l.pbit, l.logbit));
                }
            }
        }
        None
    }

    /// Clears the LogBit of every resident line (transaction commit); PBits
    /// are retained, as Section 5.1 specifies.
    pub fn clear_logbits(&mut self) {
        for l in self.lines.iter_mut().flatten() {
            l.logbit = false;
        }
    }

    /// Iterates over resident dirty lines with the LogBit set (the commit
    /// scan).
    pub fn dirty_logged_lines(&self) -> impl Iterator<Item = usize> + '_ {
        self.lines.iter().flatten().filter(|l| l.dirty && l.logbit).map(|l| l.addr)
    }

    /// Marks a resident line clean (it was written back by policy code).
    pub fn mark_clean(&mut self, line_addr: usize) {
        let set = self.set_of(line_addr);
        for i in self.slot_range(set) {
            if let Some(l) = self.lines[i].as_mut() {
                if l.addr == line_addr {
                    l.dirty = false;
                    return;
                }
            }
        }
    }

    /// Drains every resident dirty line (returning them) and marks the
    /// cache clean — used for orderly shutdown / mode switches.
    pub fn drain_dirty(&mut self) -> Vec<usize> {
        let mut out = Vec::new();
        for l in self.lines.iter_mut().flatten() {
            if l.dirty {
                out.push(l.addr);
                l.dirty = false;
            }
        }
        out.sort_unstable();
        out
    }

    /// Resident dirty lines within a page.
    pub fn dirty_lines_in_page(&self, page_start: usize, page_bytes: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .lines
            .iter()
            .flatten()
            .filter(|l| l.dirty && l.addr >= page_start && l.addr < page_start + page_bytes)
            .map(|l| l.addr)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(4, 2);
        let (hit, ev) = c.access(0, false);
        assert!(!hit && ev.is_none());
        let (hit, _) = c.access(0, true);
        assert!(hit);
        assert_eq!(c.flags(0), Some((true, false, false)));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(0, true);
        c.access(64, false);
        c.access(0, false); // touch 0 so 64 is LRU
        let (_, ev) = c.access(128, false);
        let ev = ev.expect("eviction");
        assert_eq!(ev.addr, 64);
        assert!(!ev.dirty);
    }

    #[test]
    fn eviction_reports_flags() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(0, true);
        c.set_flags(0, true, true);
        let (_, ev) = c.access(64, false);
        let ev = ev.unwrap();
        assert!(ev.dirty && ev.pbit && ev.logbit);
    }

    #[test]
    fn clear_logbits_keeps_pbits() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(0, true);
        c.set_flags(0, true, true);
        c.clear_logbits();
        assert_eq!(c.flags(0), Some((true, true, false)));
    }

    #[test]
    fn commit_scan_finds_dirty_logged() {
        let mut c = SetAssocCache::new(4, 2);
        c.access(0, true);
        c.set_flags(0, false, true);
        c.access(64, false); // clean
        c.set_flags(64, false, true);
        let lines: Vec<_> = c.dirty_logged_lines().collect();
        assert_eq!(lines, vec![0]);
    }

    #[test]
    fn drain_dirty_empties_and_sorts() {
        let mut c = SetAssocCache::new(4, 2);
        c.access(256, true);
        c.access(0, true);
        c.access(64, false);
        assert_eq!(c.drain_dirty(), vec![0, 256]);
        assert_eq!(c.drain_dirty(), Vec::<usize>::new());
    }

    #[test]
    fn dirty_lines_in_page_filters() {
        let mut c = SetAssocCache::new(64, 8);
        c.access(4096, true);
        c.access(4160, true);
        c.access(8192, true);
        assert_eq!(c.dirty_lines_in_page(4096, 4096), vec![4096, 4160]);
    }
}
