//! The simulated core: cache + TLB timing over a [`PmemDevice`].

use specpmt_pmem::PmemDevice;

use crate::cache::{EvictedLine, SetAssocCache, LINE};
use crate::config::HwConfig;
use crate::stats::HwStats;
use crate::tlb::{TlbEntry, TlbLookup, TwoLevelTlb};

/// Outcome of one memory access, reported to the policy layer
/// (`specpmt-hwtx`). Eviction handling is the policy's job: an evicted
/// dirty PM line must be written back (and, under SpecPMT, speculatively
/// logged first if its LogBit was set).
#[derive(Debug, Clone, Default)]
pub struct Access {
    /// Whether the access hit in L1.
    pub l1_hit: bool,
    /// Dirty line evicted from L1 by this access, if any (clean evictions
    /// are dropped silently; dirty ones spill to L2 and, from L2, to the
    /// WPQ, which the core handles internally unless flags require policy
    /// action).
    pub evicted: Option<EvictedLine>,
    /// TLB metadata for the accessed page (stores only).
    pub tlb: Option<TlbEntry>,
}

/// Simulated single core: L1D + shared L2 + two-level TLB, charging
/// latencies to the device clock at picosecond resolution.
#[derive(Debug)]
pub struct HwCore {
    cfg: HwConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    tlb: TwoLevelTlb,
    stats: HwStats,
    /// Sub-nanosecond remainder awaiting transfer to the device clock.
    frac_ps: u64,
}

impl HwCore {
    /// Creates a core with the given configuration.
    pub fn new(cfg: HwConfig) -> Self {
        let l1 = SetAssocCache::new(cfg.l1_sets, cfg.l1_ways);
        let l2 = SetAssocCache::new(cfg.l2_sets, cfg.l2_ways);
        let tlb = TwoLevelTlb::new(
            cfg.tlb_l1_entries,
            cfg.tlb_l1_ways,
            cfg.tlb_l2_entries,
            cfg.tlb_l2_ways,
        );
        Self { cfg, l1, l2, tlb, stats: HwStats::default(), frac_ps: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &HwStats {
        &self.stats
    }

    /// Direct access to the L1 cache (commit scans, flag maintenance).
    pub fn l1(&self) -> &SetAssocCache {
        &self.l1
    }

    /// Mutable access to the L1 cache.
    pub fn l1_mut(&mut self) -> &mut SetAssocCache {
        &mut self.l1
    }

    /// Direct access to the TLB pair.
    pub fn tlb(&self) -> &TwoLevelTlb {
        &self.tlb
    }

    /// Mutable access to the TLB pair.
    pub fn tlb_mut(&mut self) -> &mut TwoLevelTlb {
        &mut self.tlb
    }

    /// Charges `ps` picoseconds to the device clock.
    pub fn charge_ps(&mut self, dev: &mut PmemDevice, ps: u64) {
        self.frac_ps += ps;
        let ns = self.frac_ps / 1000;
        if ns > 0 {
            dev.advance(ns);
            self.frac_ps %= 1000;
        }
    }

    fn cache_access(
        &mut self,
        dev: &mut PmemDevice,
        line_addr: usize,
        write: bool,
    ) -> (bool, Option<EvictedLine>) {
        let (l1_hit, l1_evicted) = self.l1.access(line_addr, write);
        let mut cost = self.cfg.l1_hit_ps;
        if !l1_hit {
            let (l2_hit, l2_evicted) = self.l2.access(line_addr, false);
            cost += if l2_hit {
                self.stats.l2_hits += 1;
                self.cfg.l2_hit_ps
            } else {
                self.stats.mem_accesses += 1;
                self.cfg.pm_read_ps
            };
            // A dirty line falling out of L2 drains to the WPQ in the
            // background (ADR path) — its content is already what the
            // device's volatile image holds.
            if let Some(ev) = l2_evicted {
                if ev.dirty {
                    dev.background_line_write(ev.addr);
                }
            }
        } else {
            self.stats.l1_hits += 1;
        }
        self.charge_ps(dev, cost);
        // An L1 victim spills into L2 (dirty or not, to keep inclusion
        // simple); flagged lines are reported to the policy layer.
        if let Some(ev) = l1_evicted {
            if ev.dirty {
                self.stats.l1_dirty_evictions += 1;
                let (_, l2_evicted) = self.l2.access(ev.addr, true);
                if let Some(ev2) = l2_evicted {
                    if ev2.dirty {
                        dev.background_line_write(ev2.addr);
                    }
                }
            }
        }
        (l1_hit, l1_evicted)
    }

    /// A load of `len` bytes at `addr`: charges cache latency per touched
    /// line. Returns whether every line hit L1.
    pub fn load(&mut self, dev: &mut PmemDevice, addr: usize, len: usize) -> bool {
        let mut all_hit = true;
        let first = addr / LINE;
        let last = if len == 0 { first } else { (addr + len - 1) / LINE };
        for l in first..=last {
            let (hit, _) = self.cache_access(dev, l * LINE, false);
            all_hit &= hit;
        }
        all_hit
    }

    /// A transactional store: TLB lookup (with latency), then cache access
    /// per touched line. Returns the access outcome for the *first* line
    /// (policy decisions are per-page, and stores rarely straddle lines).
    pub fn store(&mut self, dev: &mut PmemDevice, addr: usize, len: usize) -> Access {
        // TLB side.
        let page = addr / self.cfg.page_bytes;
        let (lookup, entry) = self.tlb.lookup(page);
        let tlb_cost = match lookup {
            TlbLookup::HitL1 => {
                self.stats.tlb_l1_hits += 1;
                0
            }
            TlbLookup::HitL2 => {
                self.stats.tlb_l2_hits += 1;
                self.cfg.tlb_l2_hit_ps
            }
            TlbLookup::Miss => {
                self.stats.tlb_misses += 1;
                self.cfg.tlb_miss_ps
            }
        };
        self.charge_ps(dev, tlb_cost);
        // Cache side.
        let mut out = Access { tlb: Some(entry), ..Access::default() };
        let first = addr / LINE;
        let last = if len == 0 { first } else { (addr + len - 1) / LINE };
        for (i, l) in (first..=last).enumerate() {
            let (hit, evicted) = self.cache_access(dev, l * LINE, true);
            if i == 0 {
                out.l1_hit = hit;
                out.evicted = evicted;
            } else if out.evicted.is_none() {
                out.evicted = evicted;
            }
        }
        out
    }

    /// Charges the commit-time L1 scan.
    pub fn charge_commit_scan(&mut self, dev: &mut PmemDevice) {
        self.stats.commit_scans += 1;
        self.charge_ps(dev, self.cfg.commit_scan_ps);
    }

    /// Performs a bulk page copy (the ARMv9-style copy engine): charges
    /// engine latency and counts it. The actual byte movement is done by
    /// the caller, which knows the destination log layout.
    pub fn charge_bulk_copy(&mut self, dev: &mut PmemDevice) {
        self.stats.bulk_copies += 1;
        self.charge_ps(dev, self.cfg.bulk_copy_page_ps);
    }

    /// Marks a page hot in the TLB (after its bulk copy completed).
    pub fn make_page_hot(&mut self, page: usize, eid: u8) {
        self.stats.pages_made_hot += 1;
        self.tlb.set_hot(page, eid);
    }

    /// Executes `clearepoch eid`: flash-clears matching TLB entries.
    /// Returns the pages whose tracking was cleared.
    pub fn clear_epoch(&mut self, dev: &mut PmemDevice, eid: u8) -> Vec<usize> {
        self.stats.epochs_cleared += 1;
        self.charge_ps(dev, self.cfg.epoch_insn_ps);
        self.tlb.clear_epoch(eid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specpmt_pmem::{PmemConfig, PmemDevice};

    fn setup() -> (HwCore, PmemDevice) {
        (HwCore::new(HwConfig::default()), PmemDevice::new(PmemConfig::new(1 << 20)))
    }

    #[test]
    fn l1_hit_is_cheap_miss_is_expensive() {
        let (mut core, mut dev) = setup();
        core.load(&mut dev, 0, 8); // cold miss -> PM read
        let t1 = dev.now_ns();
        assert!(t1 >= 150, "cold miss must cost a PM read, got {t1}");
        core.load(&mut dev, 0, 8); // hit
        let t2 = dev.now_ns() - t1;
        assert!(t2 <= 1, "L1 hit must cost ~0.5ns, got {t2}");
    }

    #[test]
    fn store_reports_tlb_metadata() {
        let (mut core, mut dev) = setup();
        let a = core.store(&mut dev, 4096, 8);
        let tlb = a.tlb.unwrap();
        assert_eq!(tlb.page, 1);
        assert!(!tlb.epoch_bit);
        assert_eq!(core.stats().tlb_misses, 1);
        let a = core.store(&mut dev, 4100, 8);
        assert!(a.tlb.is_some());
        assert_eq!(core.stats().tlb_l1_hits, 1);
    }

    #[test]
    fn fractional_costs_accumulate() {
        let (mut core, mut dev) = setup();
        core.load(&mut dev, 0, 8); // warm the line
        let t0 = dev.now_ns();
        for _ in 0..10 {
            core.load(&mut dev, 0, 8); // 10 x 500ps = 5ns
        }
        assert_eq!(dev.now_ns() - t0, 5);
    }

    #[test]
    fn capacity_evictions_write_back_dirty_data() {
        let mut core = HwCore::new(HwConfig::default());
        let mut dev = PmemDevice::new(PmemConfig::new(8 << 20));
        // Touch a 4 MB working set — twice the L2 — so dirty lines must
        // eventually fall out of L2 into the WPQ.
        let persisted_before = dev.stats().lines_persisted;
        for i in 0..65_536 {
            let a = (i * 64) % (4 << 20);
            dev.write_u64(a, 7);
            core.store(&mut dev, a, 8);
        }
        // Some dirty lines must eventually fall out of L2 into the WPQ.
        assert!(dev.stats().lines_persisted > persisted_before);
    }

    #[test]
    fn commit_scan_and_epoch_costs_count() {
        let (mut core, mut dev) = setup();
        core.charge_commit_scan(&mut dev);
        core.store(&mut dev, 0, 8);
        core.make_page_hot(0, 3);
        let cleared = core.clear_epoch(&mut dev, 3);
        assert_eq!(cleared, vec![0]);
        assert_eq!(core.stats().commit_scans, 1);
        assert_eq!(core.stats().epochs_cleared, 1);
        assert_eq!(core.stats().pages_made_hot, 1);
    }
}
