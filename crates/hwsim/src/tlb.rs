//! Two-level TLB with SpecPMT's EpochBit + hotness counter (Fig. 9).

/// One TLB entry's SpecPMT metadata.
///
/// When `epoch_bit` is clear, `cnt_or_eid` is the 3-bit saturating counter
/// of transactional stores to the page; when set, it is the epoch ID the
/// page was speculatively logged in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Page number (address / page size).
    pub page: usize,
    /// EpochBit: the page is hot (speculatively logged).
    pub epoch_bit: bool,
    /// Saturating store counter (cold) or epoch ID (hot).
    pub cnt_or_eid: u8,
    lru: u64,
}

/// Result of a TLB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLookup {
    /// Hit in the L1 TLB.
    HitL1,
    /// Hit in the L2 TLB (entry promoted to L1).
    HitL2,
    /// Full miss (page walk; fresh cold entry inserted).
    Miss,
}

#[derive(Debug, Clone)]
struct TlbLevel {
    sets: usize,
    ways: usize,
    entries: Vec<Option<TlbEntry>>,
}

impl TlbLevel {
    fn new(entries: usize, ways: usize) -> Self {
        assert!(entries.is_multiple_of(ways), "entries must divide into ways");
        let sets = entries / ways;
        Self { sets, ways, entries: vec![None; entries] }
    }

    fn range(&self, page: usize) -> std::ops::Range<usize> {
        let set = page % self.sets;
        set * self.ways..(set + 1) * self.ways
    }

    fn find(&mut self, page: usize) -> Option<&mut TlbEntry> {
        let range = self.range(page);
        self.entries[range].iter_mut().flatten().find(|e| e.page == page)
    }

    fn take(&mut self, page: usize) -> Option<TlbEntry> {
        let range = self.range(page);
        for i in range {
            if self.entries[i].is_some_and(|e| e.page == page) {
                return self.entries[i].take();
            }
        }
        None
    }

    /// Inserts, evicting LRU; returns the victim.
    fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        let range = self.range(entry.page);
        let mut victim: Option<usize> = None;
        for i in range {
            match &self.entries[i] {
                None => {
                    self.entries[i] = Some(entry);
                    return None;
                }
                Some(e) => {
                    if victim.is_none_or(|v| self.entries[v].expect("victim occupied").lru > e.lru)
                    {
                        victim = Some(i);
                    }
                }
            }
        }
        let v = victim.expect("set non-empty");
        self.entries[v].replace(entry)
    }
}

/// L1 + L2 TLB pair with epoch metadata.
#[derive(Debug, Clone)]
pub struct TwoLevelTlb {
    l1: TlbLevel,
    l2: TlbLevel,
    tick: u64,
}

impl TwoLevelTlb {
    /// Creates the TLB pair.
    pub fn new(l1_entries: usize, l1_ways: usize, l2_entries: usize, l2_ways: usize) -> Self {
        Self {
            l1: TlbLevel::new(l1_entries, l1_ways),
            l2: TlbLevel::new(l2_entries, l2_ways),
            tick: 0,
        }
    }

    /// Looks up `page`, inserting a fresh cold entry on a miss. An entry
    /// evicted from the L2 TLB loses its metadata — the page silently
    /// becomes cold, exactly the paper's bounded-tracking property.
    pub fn lookup(&mut self, page: usize) -> (TlbLookup, TlbEntry) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.l1.find(page) {
            e.lru = tick;
            return (TlbLookup::HitL1, *e);
        }
        if let Some(mut e) = self.l2.take(page) {
            e.lru = tick;
            let demoted = self.l1.insert(e);
            if let Some(d) = demoted {
                self.l2.insert(d);
            }
            return (TlbLookup::HitL2, e);
        }
        let fresh = TlbEntry { page, epoch_bit: false, cnt_or_eid: 0, lru: tick };
        if let Some(demoted) = self.l1.insert(fresh) {
            // Demotion to L2 may drop an entry entirely (tracking lost).
            self.l2.insert(demoted);
        }
        (TlbLookup::Miss, fresh)
    }

    /// Increments the hotness counter of a resident cold page (saturating
    /// at 7) and returns the new value. No-op (returning the EID) for hot
    /// pages.
    pub fn bump_counter(&mut self, page: usize) -> u8 {
        if let Some(e) = self.l1.find(page).or_else(|| self.l2.find(page)) {
            if !e.epoch_bit {
                e.cnt_or_eid = (e.cnt_or_eid + 1).min(7);
            }
            e.cnt_or_eid
        } else {
            0
        }
    }

    /// Marks a resident page hot with the given epoch ID.
    pub fn set_hot(&mut self, page: usize, eid: u8) {
        if let Some(e) = self.l1.find(page).or_else(|| self.l2.find(page)) {
            e.epoch_bit = true;
            e.cnt_or_eid = eid;
        }
    }

    /// Metadata for a resident page.
    pub fn entry(&mut self, page: usize) -> Option<TlbEntry> {
        self.l1.find(page).or_else(|| self.l2.find(page)).map(|e| *e)
    }

    /// The `clearepoch EID` instruction: flash-clears the EpochBit and
    /// counter of every entry (both levels) whose epoch matches `eid`.
    /// Returns the pages cleared.
    pub fn clear_epoch(&mut self, eid: u8) -> Vec<usize> {
        let mut cleared = Vec::new();
        for level in [&mut self.l1, &mut self.l2] {
            for e in level.entries.iter_mut().flatten() {
                if e.epoch_bit && e.cnt_or_eid == eid {
                    e.epoch_bit = false;
                    e.cnt_or_eid = 0;
                    cleared.push(e.page);
                }
            }
        }
        cleared
    }

    /// All pages currently marked hot in a given epoch.
    pub fn hot_pages(&self, eid: u8) -> Vec<usize> {
        let mut out = Vec::new();
        for level in [&self.l1, &self.l2] {
            for e in level.entries.iter().flatten() {
                if e.epoch_bit && e.cnt_or_eid == eid {
                    out.push(e.page);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> TwoLevelTlb {
        TwoLevelTlb::new(8, 4, 32, 4)
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tlb();
        let (r, e) = t.lookup(5);
        assert_eq!(r, TlbLookup::Miss);
        assert!(!e.epoch_bit);
        let (r, _) = t.lookup(5);
        assert_eq!(r, TlbLookup::HitL1);
    }

    #[test]
    fn counter_saturates_at_seven() {
        let mut t = tlb();
        t.lookup(3);
        for _ in 0..20 {
            t.bump_counter(3);
        }
        assert_eq!(t.entry(3).unwrap().cnt_or_eid, 7);
    }

    #[test]
    fn hot_page_keeps_eid() {
        let mut t = tlb();
        t.lookup(3);
        t.set_hot(3, 5);
        assert_eq!(t.bump_counter(3), 5, "hot pages keep their EID");
        let e = t.entry(3).unwrap();
        assert!(e.epoch_bit);
        assert_eq!(e.cnt_or_eid, 5);
    }

    #[test]
    fn clear_epoch_resets_matching_pages_only() {
        let mut t = tlb();
        t.lookup(1);
        t.lookup(2);
        t.set_hot(1, 3);
        t.set_hot(2, 4);
        let cleared = t.clear_epoch(3);
        assert_eq!(cleared, vec![1]);
        assert!(!t.entry(1).unwrap().epoch_bit);
        assert!(t.entry(2).unwrap().epoch_bit);
    }

    #[test]
    fn capacity_eviction_loses_tracking() {
        // 8-entry L1 + 32-entry L2, pages all mapping across sets: insert
        // many more pages than capacity; early pages lose their metadata.
        let mut t = tlb();
        t.lookup(0);
        t.set_hot(0, 1);
        for p in 1..200 {
            t.lookup(p);
        }
        // Page 0 may have been evicted — looking it up again yields a cold
        // fresh entry.
        let (_, e) = t.lookup(0);
        assert!(!e.epoch_bit, "evicted page must come back cold");
    }

    #[test]
    fn l2_hit_promotes() {
        let mut t = TwoLevelTlb::new(4, 4, 64, 4);
        // Fill L1's single... use distinct pages in same set to force
        // demotion of page 0 to L2.
        t.lookup(0);
        t.lookup(4);
        t.lookup(8);
        t.lookup(12);
        t.lookup(16); // evicts LRU (0) to L2
        let (r, _) = t.lookup(0);
        assert_eq!(r, TlbLookup::HitL2);
    }

    #[test]
    fn hot_pages_lists_epoch_members() {
        let mut t = tlb();
        t.lookup(1);
        t.lookup(9);
        t.set_hot(1, 2);
        t.set_hot(9, 2);
        assert_eq!(t.hot_pages(2), vec![1, 9]);
        assert!(t.hot_pages(3).is_empty());
    }
}
