//! Hardware configuration (the paper's Table 1).

/// Parameters of the simulated core + memory hierarchy. Latencies are in
/// **picoseconds** (a 4 GHz core's 2-cycle L1 hit is 500 ps; nanosecond
/// resolution would round it away).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwConfig {
    /// L1 data cache sets (32 KB, 8-way, 64 B lines → 64 sets).
    pub l1_sets: usize,
    /// L1 data cache ways.
    pub l1_ways: usize,
    /// L1 hit latency (2 cycles @ 4 GHz).
    pub l1_hit_ps: u64,
    /// Shared L2 sets (2 MB, 12-way → 2731 sets; rounded to 2730).
    pub l2_sets: usize,
    /// L2 ways.
    pub l2_ways: usize,
    /// L2 hit latency (20 cycles).
    pub l2_hit_ps: u64,
    /// PM read latency on an L2 miss (Table 1: 150 ns).
    pub pm_read_ps: u64,
    /// L1 TLB entries (64, 8-way).
    pub tlb_l1_entries: usize,
    /// L1 TLB associativity.
    pub tlb_l1_ways: usize,
    /// L2 TLB entries (1536, 12-way).
    pub tlb_l2_entries: usize,
    /// L2 TLB associativity.
    pub tlb_l2_ways: usize,
    /// L2-TLB hit penalty.
    pub tlb_l2_hit_ps: u64,
    /// Page-walk latency on a full TLB miss.
    pub tlb_miss_ps: u64,
    /// Page size.
    pub page_bytes: usize,
    /// Saturating-counter threshold at which a page becomes hot
    /// (3-bit counter → 7).
    pub hot_threshold: u8,
    /// Commit-time L1 scan for dirty transactional lines.
    pub commit_scan_ps: u64,
    /// Bulk-copy engine latency to copy one page into the log.
    pub bulk_copy_page_ps: u64,
    /// `startepoch`/`clearepoch` instruction latency (TLB flash-clear).
    pub epoch_insn_ps: u64,
}

impl Default for HwConfig {
    fn default() -> Self {
        Self {
            l1_sets: 64,
            l1_ways: 8,
            l1_hit_ps: 500,
            l2_sets: 2730,
            l2_ways: 12,
            l2_hit_ps: 5_000,
            pm_read_ps: 150_000,
            tlb_l1_entries: 64,
            tlb_l1_ways: 8,
            tlb_l2_entries: 1536,
            tlb_l2_ways: 12,
            tlb_l2_hit_ps: 2_000,
            tlb_miss_ps: 50_000,
            page_bytes: 4096,
            hot_threshold: 7,
            commit_scan_ps: 32_000,
            bulk_copy_page_ps: 250_000,
            epoch_insn_ps: 5_000,
        }
    }
}

impl HwConfig {
    /// L1 capacity in bytes.
    pub fn l1_bytes(&self) -> usize {
        self.l1_sets * self.l1_ways * crate::cache::LINE
    }

    /// L2 capacity in bytes.
    pub fn l2_bytes(&self) -> usize {
        self.l2_sets * self.l2_ways * crate::cache::LINE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capacities() {
        let c = HwConfig::default();
        assert_eq!(c.l1_bytes(), 32 * 1024);
        // 2 MB within rounding of the set count.
        assert!((c.l2_bytes() as i64 - 2 * 1024 * 1024).abs() < 64 * 1024);
        assert_eq!(c.tlb_l1_entries, 64);
        assert_eq!(c.tlb_l2_entries, 1536);
        assert_eq!(c.pm_read_ps, 150_000);
    }
}
