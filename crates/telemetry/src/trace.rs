//! Bounded per-thread ring-buffer event tracer for the transaction
//! lifecycle, reclamation, and WPQ drains.
//!
//! Off by default; enabled by constructing the owning runtime with
//! `SPECPMT_TRACE=1` in the environment (or via [`Tracer::set_enabled`]).
//! Each thread records into its own fixed-capacity ring (capacity from
//! `SPECPMT_TRACE_CAP`, default [`DEFAULT_CAPACITY`]); when a ring is
//! full the *oldest* event is overwritten and a per-ring drop counter is
//! bumped, so a wrapped ring still reports exactly how many events it
//! lost. Events are plain-old-data (`at_ns`, `tid`, `kind`, two operand
//! words) — recording allocates nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::JsonWriter;

/// Default per-thread ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 4096;

/// What happened. Operand meaning (`a`, `b`) is per-kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Transaction began. `a` = transactions begun so far on this thread.
    Begin = 0,
    /// A write was staged. `a` = pool offset, `b` = length.
    Stage = 1,
    /// Record header sealed. `a` = commit timestamp, `b` = payload bytes.
    Seal = 2,
    /// Address lock acquired. `a` = pool offset, `b` = wait nanoseconds.
    LockAcquire = 3,
    /// Flush plan executed. `a` = dirty ranges planned, `b` = unused (0).
    ClwbPlan = 4,
    /// Commit fence issued. `a` = WPQ-drain stall nanoseconds, `b` =
    /// flushes the fence completed.
    Fence = 5,
    /// Transaction committed. `a` = commit timestamp, `b` = commit ns.
    Commit = 6,
    /// Transaction aborted and will retry. `a` = retry attempt number.
    AbortRetry = 7,
    /// Transaction doomed by a peer. `a` = dooming thread id.
    Doom = 8,
    /// Reclamation cycle finished. `a` = bytes reclaimed, `b` = cycle ns.
    ReclaimCycle = 9,
    /// WPQ drain observed at a fence (stall > 0). `a` = drain-wait ns,
    /// `b` = flushes drained.
    WpqDrain = 10,
}

/// Number of [`EventKind`] variants.
pub const EVENT_KIND_COUNT: usize = 11;

/// JSON/debug names for each [`EventKind`], index-aligned with the enum.
pub const EVENT_KIND_NAMES: [&str; EVENT_KIND_COUNT] = [
    "begin",
    "stage",
    "seal",
    "lock_acquire",
    "clwb_plan",
    "fence",
    "commit",
    "abort_retry",
    "doom",
    "reclaim_cycle",
    "wpq_drain",
];

/// One traced event (POD; 32 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's construction.
    pub at_ns: u64,
    /// Recording thread.
    pub tid: u32,
    /// Event kind.
    pub kind: EventKind,
    /// First operand (per-kind meaning).
    pub a: u64,
    /// Second operand (per-kind meaning).
    pub b: u64,
}

/// Fixed-capacity overwrite-oldest ring.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event (only meaningful once full).
    head: usize,
    /// Live events (`<= buf.capacity()`).
    len: usize,
    /// Events overwritten since construction (never reset by wrapping).
    dropped: u64,
    cap: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap), head: 0, len: 0, dropped: 0, cap }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.len < self.cap {
            self.buf.push(ev);
            self.len += 1;
        } else {
            // Full: overwrite the oldest slot and advance the head.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events in record order (oldest first).
    fn ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % self.len.max(1)]);
        }
        out
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
    }
}

/// Per-thread bounded event tracer. Owned by a runtime; threads record
/// into their own shard (the per-shard mutex is uncontended in normal
/// operation and skipped entirely while disabled).
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    shards: Vec<Mutex<Ring>>,
}

/// Merged view of all shards at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// All live events, globally ordered by `at_ns`.
    pub events: Vec<TraceEvent>,
    /// Total events lost to ring wrap, across all shards.
    pub dropped: u64,
}

impl TraceSnapshot {
    /// Counts live events of one kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Emits `"events":[{...}],"dropped":N` into the caller's open
    /// object.
    pub fn emit(&self, w: &mut JsonWriter) {
        w.begin_array_field("events");
        for e in &self.events {
            w.begin_object();
            w.field_u64("at_ns", e.at_ns);
            w.field_u64("tid", e.tid as u64);
            w.field_str("kind", EVENT_KIND_NAMES[e.kind as usize]);
            w.field_u64("a", e.a);
            w.field_u64("b", e.b);
            w.end_object();
        }
        w.end_array();
        w.field_u64("dropped", self.dropped);
    }
}

impl Tracer {
    /// Builds a tracer with one ring per thread. The initial enabled
    /// state honors `SPECPMT_TRACE`; capacity honors `SPECPMT_TRACE_CAP`
    /// (events per thread, default [`DEFAULT_CAPACITY`]).
    pub fn new(threads: usize) -> Self {
        let cap = crate::Knobs::get().trace_cap.unwrap_or(DEFAULT_CAPACITY);
        Self::with_capacity(threads, cap)
    }

    /// Builds a tracer with an explicit per-thread ring capacity.
    pub fn with_capacity(threads: usize, cap: usize) -> Self {
        Self {
            enabled: AtomicBool::new(crate::Knobs::get().trace),
            epoch: Instant::now(),
            shards: (0..threads.max(1)).map(|_| Mutex::new(Ring::new(cap.max(1)))).collect(),
        }
    }

    /// Whether recording is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Per-thread ring capacity (events). Exported alongside
    /// [`Tracer::dropped_total`] so a JSON consumer can tell a
    /// comfortably-sized ring (`dropped == 0`) from one that needs a
    /// bigger `SPECPMT_TRACE_CAP` (see the sizing rule in
    /// [`crate::knobs`]).
    pub fn capacity(&self) -> usize {
        self.shards.first().and_then(|s| s.lock().ok().map(|r| r.cap)).unwrap_or(DEFAULT_CAPACITY)
    }

    /// Exact events lost to ring wrap across all shards since
    /// construction (or the last [`Tracer::clear`]). Cheaper than a full
    /// [`Tracer::snapshot`] when only the drop count is needed.
    pub fn dropped_total(&self) -> u64 {
        self.shards.iter().filter_map(|s| s.lock().ok().map(|r| r.dropped)).sum()
    }

    /// Turns recording on or off (existing events are kept).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records one event on `tid`'s ring. No-op while disabled.
    #[inline]
    pub fn record(&self, tid: usize, kind: EventKind, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        let at_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ev = TraceEvent { at_ns, tid: tid as u32, kind, a, b };
        let shard = &self.shards[tid % self.shards.len()];
        if let Ok(mut ring) = shard.lock() {
            ring.push(ev);
        }
    }

    /// Merges every shard into one globally time-ordered snapshot
    /// (without clearing the rings).
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for shard in &self.shards {
            if let Ok(ring) = shard.lock() {
                events.extend(ring.ordered());
                dropped += ring.dropped;
            }
        }
        events.sort_by_key(|e| e.at_ns);
        TraceSnapshot { events, dropped }
    }

    /// Empties every ring and zeroes the drop counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            if let Ok(mut ring) = shard.lock() {
                ring.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::with_capacity(2, 8);
        t.set_enabled(false);
        t.record(0, EventKind::Begin, 0, 0);
        let s = t.snapshot();
        assert!(s.events.is_empty());
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn ring_wraps_without_losing_drop_count() {
        let t = Tracer::with_capacity(1, 4);
        t.set_enabled(true);
        for i in 0..10u64 {
            t.record(0, EventKind::Commit, i, 0);
        }
        let s = t.snapshot();
        assert_eq!(s.events.len(), 4, "ring keeps only the newest cap events");
        assert_eq!(s.dropped, 6, "every overwritten event is counted");
        assert_eq!(t.capacity(), 4);
        assert_eq!(t.dropped_total(), 6, "accessor matches the snapshot's count");
        // The survivors are the newest four, in order.
        let kept: Vec<u64> = s.events.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn snapshot_merges_threads_in_time_order() {
        let t = Tracer::with_capacity(2, 8);
        t.set_enabled(true);
        t.record(0, EventKind::Begin, 1, 0);
        t.record(1, EventKind::Begin, 2, 0);
        t.record(0, EventKind::Commit, 3, 0);
        let s = t.snapshot();
        assert_eq!(s.events.len(), 3);
        assert!(s.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(s.count(EventKind::Begin), 2);
        assert_eq!(s.count(EventKind::Commit), 1);
        t.clear();
        assert!(t.snapshot().events.is_empty());
    }

    #[test]
    fn emit_names_kinds() {
        let t = Tracer::with_capacity(1, 4);
        t.set_enabled(true);
        t.record(0, EventKind::WpqDrain, 3, 250);
        let mut w = JsonWriter::new();
        w.begin_object();
        t.snapshot().emit(&mut w);
        w.end_object();
        let j = w.finish();
        assert!(j.contains("\"kind\":\"wpq_drain\""), "{j}");
        assert!(j.contains("\"dropped\":0"), "{j}");
    }
}
