//! The typed `SPECPMT_*` environment-knob surface.
//!
//! Every environment variable the workspace reads is parsed **here, once**
//! into a [`Knobs`] struct ([`Knobs::get`] caches the first parse for the
//! process lifetime). Ad-hoc `std::env::var("SPECPMT_..")` calls sprinkled
//! across crates are not allowed — a knob nobody can enumerate is a knob
//! nobody can document, and the verify tier greps for strays.
//!
//! Malformed or out-of-range values are **named errors**
//! ([`KnobError`]), never silent defaults: a typo'd
//! `SPECPMT_TRACE_CAP=40K` fails fast with the variable name, the
//! offending value, and what was expected, instead of quietly running
//! with the default capacity.
//!
//! | Variable | Default | Accepted values | Meaning |
//! |---|---|---|---|
//! | `SPECPMT_TELEMETRY` | off | `1/true/yes/on` (or `0/false/no/off`) | Start metric registries enabled. |
//! | `SPECPMT_TRACE` | off | boolean as above | Start lifecycle tracers enabled. |
//! | `SPECPMT_TRACE_CAP` | [`crate::DEFAULT_CAPACITY`] | integer `1..=16777216` | Per-thread trace-ring capacity (events). Size it to the window you need to look back over: each event is 32 bytes in DRAM, and a full ring overwrites oldest-first while counting drops — so pick `cap ≥ expected events per thread between snapshots` to keep `dropped` at 0. |
//! | `SPECPMT_GROUP_COMMIT` | off | boolean as above | Default the shared runtime to epoch/group commit. |
//! | `SPECPMT_GROUP_LINGER_NS` | `0` | non-negative integer | Combiner linger budget per batch, simulated ns. |
//! | `SPECPMT_COMMIT_BASELINE` | `results/commit_path_baseline.json` | path | Baseline file the commit-path bench compares against. |
//! | `SPECPMT_BENCH_SMOKE` | off | set (any value) | Run benches at bounded smoke scale. |
//! | `SPECPMT_CRASH_TARGET` | unset | `site:hit` | Deterministic crash target for the enumeration harness (1-based hit count; site names in `specpmt_pmem::sites`). |
//! | `SPECPMT_FLIGHT_RECORDER` | off | boolean as above | Default the shared runtime's PM-resident flight recorder on. |
//! | `SPECPMT_BBOX_CAP` | [`crate::blackbox::DEFAULT_RING_CAPACITY`] | integer `16..=1048576` | Flight-recorder events per ring (per thread). |
//! | `SPECPMT_BBOX_STALL_NS` | `10000` | non-negative integer | Fence-stall threshold (simulated ns) above which the recorder logs a `fence_stall` event. |

use std::fmt;
use std::sync::OnceLock;

/// A named environment-knob parse failure: which variable, what it held,
/// and what was expected. Surfaced by [`Knobs::try_from_env`]; the
/// process-wide [`Knobs::get`] panics with this message rather than
/// running with a value the operator didn't ask for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnobError {
    /// The offending `SPECPMT_*` variable.
    pub var: &'static str,
    /// The raw value found in the environment.
    pub value: String,
    /// What the variable accepts.
    pub expected: &'static str,
}

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}={:?}: expected {}", self.var, self.value, self.expected)
    }
}

impl std::error::Error for KnobError {}

fn bad(var: &'static str, value: &str, expected: &'static str) -> KnobError {
    KnobError { var, value: value.to_string(), expected }
}

/// Parses a boolean toggle: `1/true/yes/on` are truthy, `0/false/no/off`
/// (and empty) are falsy, anything else is a named error.
fn parse_flag(var: &'static str, raw: Option<&str>) -> Result<bool, KnobError> {
    let Some(raw) = raw else { return Ok(false) };
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Ok(true),
        "" | "0" | "false" | "no" | "off" => Ok(false),
        _ => Err(bad(var, raw, "a boolean (1/true/yes/on or 0/false/no/off)")),
    }
}

/// Parses an integer knob within `[lo, hi]`; unset returns `None`.
fn parse_ranged(
    var: &'static str,
    raw: Option<&str>,
    lo: u64,
    hi: u64,
    expected: &'static str,
) -> Result<Option<u64>, KnobError> {
    let Some(raw) = raw else { return Ok(None) };
    let v: u64 = raw.trim().parse().map_err(|_| bad(var, raw, expected))?;
    if !(lo..=hi).contains(&v) {
        return Err(bad(var, raw, expected));
    }
    Ok(Some(v))
}

/// The parsed `SPECPMT_*` knob set (see the module table for each knob's
/// default and accepted values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knobs {
    /// `SPECPMT_TELEMETRY`: start metric registries enabled.
    pub telemetry: bool,
    /// `SPECPMT_TRACE`: start lifecycle tracers enabled.
    pub trace: bool,
    /// `SPECPMT_TRACE_CAP`: per-thread trace-ring capacity; `None` means
    /// the built-in [`crate::DEFAULT_CAPACITY`].
    pub trace_cap: Option<usize>,
    /// `SPECPMT_GROUP_COMMIT`: default the shared runtime to group commit.
    pub group_commit: bool,
    /// `SPECPMT_GROUP_LINGER_NS`: combiner linger budget (simulated ns).
    pub group_linger_ns: u64,
    /// `SPECPMT_COMMIT_BASELINE`: override path of the commit-path
    /// baseline JSON; `None` means the checked-in default.
    pub commit_baseline: Option<String>,
    /// `SPECPMT_BENCH_SMOKE`: set (to anything) runs benches at smoke
    /// scale.
    pub bench_smoke: bool,
    /// `SPECPMT_CRASH_TARGET`: a `site:hit` crash target for the
    /// deterministic enumeration harness, kept as raw strings here (this
    /// crate sits below `specpmt-pmem`, which owns the typed `CrashPlan`
    /// and validates the site name against its inventory).
    pub crash_target: Option<(String, u64)>,
    /// `SPECPMT_FLIGHT_RECORDER`: default the shared runtime's
    /// PM-resident flight recorder on.
    pub flight_recorder: bool,
    /// `SPECPMT_BBOX_CAP`: flight-recorder events per ring; `None` means
    /// [`crate::blackbox::DEFAULT_RING_CAPACITY`].
    pub bbox_cap: Option<usize>,
    /// `SPECPMT_BBOX_STALL_NS`: fence-stall event threshold (simulated
    /// ns); `None` means the runtime default (10 µs).
    pub bbox_stall_ns: Option<u64>,
}

impl Knobs {
    /// Parses knobs through an arbitrary lookup function — the
    /// environment in production ([`Knobs::try_from_env`]), a map in
    /// tests. Returns the first [`KnobError`] encountered.
    pub fn from_lookup(look: &dyn Fn(&str) -> Option<String>) -> Result<Self, KnobError> {
        let get = |name: &str| look(name);
        let telemetry = parse_flag("SPECPMT_TELEMETRY", get("SPECPMT_TELEMETRY").as_deref())?;
        let trace = parse_flag("SPECPMT_TRACE", get("SPECPMT_TRACE").as_deref())?;
        let trace_cap = parse_ranged(
            "SPECPMT_TRACE_CAP",
            get("SPECPMT_TRACE_CAP").as_deref(),
            1,
            1 << 24,
            "an integer ring capacity in 1..=16777216",
        )?
        .map(|v| v as usize);
        let group_commit =
            parse_flag("SPECPMT_GROUP_COMMIT", get("SPECPMT_GROUP_COMMIT").as_deref())?;
        let group_linger_ns = parse_ranged(
            "SPECPMT_GROUP_LINGER_NS",
            get("SPECPMT_GROUP_LINGER_NS").as_deref(),
            0,
            u64::MAX,
            "a non-negative integer (simulated ns)",
        )?
        .unwrap_or(0);
        let commit_baseline = get("SPECPMT_COMMIT_BASELINE").filter(|s| !s.trim().is_empty());
        let bench_smoke = get("SPECPMT_BENCH_SMOKE").is_some();
        let crash_target = match get("SPECPMT_CRASH_TARGET") {
            None => None,
            Some(raw) => Some(Self::parse_crash_target(&raw).ok_or_else(|| {
                bad(
                    "SPECPMT_CRASH_TARGET",
                    &raw,
                    "a site:hit target with a 1-based hit count (e.g. mt/commit/fence:3)",
                )
            })?),
        };
        let flight_recorder =
            parse_flag("SPECPMT_FLIGHT_RECORDER", get("SPECPMT_FLIGHT_RECORDER").as_deref())?;
        let bbox_cap = parse_ranged(
            "SPECPMT_BBOX_CAP",
            get("SPECPMT_BBOX_CAP").as_deref(),
            16,
            1 << 20,
            "an integer events-per-ring capacity in 16..=1048576",
        )?
        .map(|v| v as usize);
        let bbox_stall_ns = parse_ranged(
            "SPECPMT_BBOX_STALL_NS",
            get("SPECPMT_BBOX_STALL_NS").as_deref(),
            0,
            u64::MAX,
            "a non-negative integer (simulated ns)",
        )?;
        Ok(Self {
            telemetry,
            trace,
            trace_cap,
            group_commit,
            group_linger_ns,
            commit_baseline,
            bench_smoke,
            crash_target,
            flight_recorder,
            bbox_cap,
            bbox_stall_ns,
        })
    }

    /// Parses the process environment, surfacing the first malformed
    /// knob as a named error.
    pub fn try_from_env() -> Result<Self, KnobError> {
        Self::from_lookup(&|name| std::env::var(name).ok())
    }

    /// Parses the environment fresh. Prefer [`Knobs::get`] outside tests —
    /// knobs are meant to be read once at startup.
    ///
    /// # Panics
    ///
    /// Panics with the [`KnobError`] message when a `SPECPMT_*` variable
    /// holds a malformed or out-of-range value — failing fast beats
    /// silently running with a default the operator didn't ask for.
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(k) => k,
            Err(e) => panic!("{e}"),
        }
    }

    /// The process-wide knob set, parsed once on first use.
    pub fn get() -> &'static Knobs {
        static KNOBS: OnceLock<Knobs> = OnceLock::new();
        KNOBS.get_or_init(Knobs::from_env)
    }

    /// Splits a `site:hit` target string; hit counts are 1-based, so `0`
    /// (like any malformed target) is rejected. Full site-name validation
    /// happens in `specpmt_pmem::CrashPlan::parse_target`.
    fn parse_crash_target(s: &str) -> Option<(String, u64)> {
        let (site, hit) = s.rsplit_once(':')?;
        let hit: u64 = hit.trim().parse().ok()?;
        if site.is_empty() || hit == 0 {
            return None;
        }
        Some((site.to_string(), hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn from_map(pairs: &[(&str, &str)]) -> Result<Knobs, KnobError> {
        let map: HashMap<String, String> =
            pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        Knobs::from_lookup(&move |name| map.get(name).cloned())
    }

    #[test]
    fn defaults_are_all_off() {
        let k = from_map(&[]).expect("empty environment parses");
        assert!(!k.telemetry && !k.trace && !k.group_commit && !k.bench_smoke);
        assert!(!k.flight_recorder);
        assert_eq!(k.trace_cap, None);
        assert_eq!(k.group_linger_ns, 0);
        assert_eq!(k.commit_baseline, None);
        assert_eq!(k.crash_target, None);
        assert_eq!(k.bbox_cap, None);
        assert_eq!(k.bbox_stall_ns, None);
    }

    #[test]
    fn well_formed_values_parse() {
        let k = from_map(&[
            ("SPECPMT_TELEMETRY", "on"),
            ("SPECPMT_TRACE", "0"),
            ("SPECPMT_TRACE_CAP", " 128 "),
            ("SPECPMT_GROUP_COMMIT", "TRUE"),
            ("SPECPMT_GROUP_LINGER_NS", "250"),
            ("SPECPMT_COMMIT_BASELINE", "results/alt.json"),
            ("SPECPMT_BENCH_SMOKE", "whatever"),
            ("SPECPMT_CRASH_TARGET", "mt/commit/fence:3"),
            ("SPECPMT_FLIGHT_RECORDER", "yes"),
            ("SPECPMT_BBOX_CAP", "64"),
            ("SPECPMT_BBOX_STALL_NS", "5000"),
        ])
        .expect("all values are well-formed");
        assert!(k.telemetry && !k.trace && k.group_commit && k.bench_smoke);
        assert_eq!(k.trace_cap, Some(128));
        assert_eq!(k.group_linger_ns, 250);
        assert_eq!(k.commit_baseline.as_deref(), Some("results/alt.json"));
        assert_eq!(k.crash_target, Some(("mt/commit/fence".to_string(), 3)));
        assert!(k.flight_recorder);
        assert_eq!(k.bbox_cap, Some(64));
        assert_eq!(k.bbox_stall_ns, Some(5000));
    }

    /// Every documented variable with a constrained value space must
    /// produce a **named** error on malformed input — the variable name
    /// and the offending value both appear in the message.
    #[test]
    fn malformed_values_name_the_variable() {
        let cases: &[(&str, &str)] = &[
            ("SPECPMT_TELEMETRY", "maybe"),
            ("SPECPMT_TRACE", "2"),
            ("SPECPMT_TRACE_CAP", "40K"),
            ("SPECPMT_TRACE_CAP", "0"),
            ("SPECPMT_TRACE_CAP", "-5"),
            ("SPECPMT_GROUP_COMMIT", "enable"),
            ("SPECPMT_GROUP_LINGER_NS", "fast"),
            ("SPECPMT_GROUP_LINGER_NS", "-1"),
            ("SPECPMT_CRASH_TARGET", "no-colon"),
            ("SPECPMT_CRASH_TARGET", "site:0"),
            ("SPECPMT_CRASH_TARGET", ":3"),
            ("SPECPMT_CRASH_TARGET", "a/b:x"),
            ("SPECPMT_FLIGHT_RECORDER", "si"),
            ("SPECPMT_BBOX_CAP", "huge"),
            ("SPECPMT_BBOX_CAP", "8"),
            ("SPECPMT_BBOX_CAP", "99999999"),
            ("SPECPMT_BBOX_STALL_NS", "10ms"),
        ];
        for (var, value) in cases {
            let err =
                from_map(&[(var, value)]).expect_err(&format!("{var}={value} must be rejected"));
            assert_eq!(err.var, *var);
            assert_eq!(err.value, *value);
            let msg = err.to_string();
            assert!(msg.contains(var), "error must name the variable: {msg}");
            assert!(msg.contains(value), "error must show the value: {msg}");
        }
    }

    #[test]
    fn out_of_range_values_are_rejected_not_clamped() {
        // TRACE_CAP above its documented ceiling.
        let err = from_map(&[("SPECPMT_TRACE_CAP", "16777217")]).unwrap_err();
        assert_eq!(err.var, "SPECPMT_TRACE_CAP");
        // BBOX_CAP below its documented floor.
        let err = from_map(&[("SPECPMT_BBOX_CAP", "15")]).unwrap_err();
        assert_eq!(err.var, "SPECPMT_BBOX_CAP");
    }

    #[test]
    fn crash_target_parses_site_and_hit() {
        assert_eq!(
            Knobs::parse_crash_target("seq/commit/flush:2"),
            Some(("seq/commit/flush".to_string(), 2))
        );
        assert_eq!(Knobs::parse_crash_target("no-colon"), None);
        assert_eq!(Knobs::parse_crash_target("site:0"), None, "hit counts are 1-based");
        assert_eq!(Knobs::parse_crash_target(":3"), None);
        assert_eq!(Knobs::parse_crash_target("a/b:x"), None);
    }

    #[test]
    fn env_parse_does_not_panic_on_clean_process_env() {
        // The test-runner environment is expected to be well-formed; the
        // named-error path is exercised through `from_lookup` above.
        for (k, _) in std::env::vars() {
            if k.starts_with("SPECPMT_") {
                return; // externally-set knobs: nothing to assert here
            }
        }
        let k = Knobs::try_from_env().expect("clean environment parses");
        assert!(!k.telemetry);
    }
}
