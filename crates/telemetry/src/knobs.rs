//! The typed `SPECPMT_*` environment-knob surface.
//!
//! Every environment variable the workspace reads is parsed **here, once**
//! into a [`Knobs`] struct ([`Knobs::get`] caches the first parse for the
//! process lifetime). Ad-hoc `std::env::var("SPECPMT_..")` calls sprinkled
//! across crates are not allowed — a knob nobody can enumerate is a knob
//! nobody can document, and the verify tier greps for strays.
//!
//! | Variable | Default | Accepted values | Meaning |
//! |---|---|---|---|
//! | `SPECPMT_TELEMETRY` | off | `1/true/yes/on` | Start metric registries enabled. |
//! | `SPECPMT_TRACE` | off | `1/true/yes/on` | Start lifecycle tracers enabled. |
//! | `SPECPMT_TRACE_CAP` | [`crate::DEFAULT_CAPACITY`] | positive integer | Per-thread trace-ring capacity (events). |
//! | `SPECPMT_GROUP_COMMIT` | off | `1/true/yes/on` | Default the shared runtime to epoch/group commit. |
//! | `SPECPMT_GROUP_LINGER_NS` | `0` | non-negative integer | Combiner linger budget per batch, simulated ns. |
//! | `SPECPMT_COMMIT_BASELINE` | `results/commit_path_baseline.json` | path | Baseline file the commit-path bench compares against. |
//! | `SPECPMT_BENCH_SMOKE` | off | set (any value) | Run benches at bounded smoke scale. |
//! | `SPECPMT_CRASH_TARGET` | unset | `site:hit` | Deterministic crash target for the enumeration harness (1-based hit count; site names in `specpmt_pmem::sites`). |

use std::sync::OnceLock;

/// Reads a boolean env toggle: `1`, `true`, `yes`, `on` (case-insensitive)
/// are truthy; unset or anything else is falsy.
fn env_flag(name: &str) -> bool {
    match std::env::var(name) {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on"),
        Err(_) => false,
    }
}

/// Reads a numeric env knob; unset or unparsable values fall back to
/// `default`.
fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

/// The parsed `SPECPMT_*` knob set (see the module table for each knob's
/// default and accepted values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Knobs {
    /// `SPECPMT_TELEMETRY`: start metric registries enabled.
    pub telemetry: bool,
    /// `SPECPMT_TRACE`: start lifecycle tracers enabled.
    pub trace: bool,
    /// `SPECPMT_TRACE_CAP`: per-thread trace-ring capacity; `None` means
    /// the built-in [`crate::DEFAULT_CAPACITY`].
    pub trace_cap: Option<usize>,
    /// `SPECPMT_GROUP_COMMIT`: default the shared runtime to group commit.
    pub group_commit: bool,
    /// `SPECPMT_GROUP_LINGER_NS`: combiner linger budget (simulated ns).
    pub group_linger_ns: u64,
    /// `SPECPMT_COMMIT_BASELINE`: override path of the commit-path
    /// baseline JSON; `None` means the checked-in default.
    pub commit_baseline: Option<String>,
    /// `SPECPMT_BENCH_SMOKE`: set (to anything) runs benches at smoke
    /// scale.
    pub bench_smoke: bool,
    /// `SPECPMT_CRASH_TARGET`: a `site:hit` crash target for the
    /// deterministic enumeration harness, kept as raw strings here (this
    /// crate sits below `specpmt-pmem`, which owns the typed `CrashPlan`
    /// and validates the site name against its inventory).
    pub crash_target: Option<(String, u64)>,
}

impl Knobs {
    /// Parses the environment fresh. Prefer [`Knobs::get`] outside tests —
    /// knobs are meant to be read once at startup.
    pub fn from_env() -> Self {
        let trace_cap = std::env::var("SPECPMT_TRACE_CAP")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&c| c > 0);
        let commit_baseline =
            std::env::var("SPECPMT_COMMIT_BASELINE").ok().filter(|s| !s.trim().is_empty());
        let crash_target =
            std::env::var("SPECPMT_CRASH_TARGET").ok().and_then(|s| Self::parse_crash_target(&s));
        Self {
            telemetry: env_flag("SPECPMT_TELEMETRY"),
            trace: env_flag("SPECPMT_TRACE"),
            trace_cap,
            group_commit: env_flag("SPECPMT_GROUP_COMMIT"),
            group_linger_ns: env_u64("SPECPMT_GROUP_LINGER_NS", 0),
            commit_baseline,
            bench_smoke: std::env::var_os("SPECPMT_BENCH_SMOKE").is_some(),
            crash_target,
        }
    }

    /// The process-wide knob set, parsed once on first use.
    pub fn get() -> &'static Knobs {
        static KNOBS: OnceLock<Knobs> = OnceLock::new();
        KNOBS.get_or_init(Knobs::from_env)
    }

    /// Splits a `site:hit` target string; hit counts are 1-based, so `0`
    /// (like any malformed target) is rejected. Full site-name validation
    /// happens in `specpmt_pmem::CrashPlan::parse_target`.
    fn parse_crash_target(s: &str) -> Option<(String, u64)> {
        let (site, hit) = s.rsplit_once(':')?;
        let hit: u64 = hit.trim().parse().ok()?;
        if site.is_empty() || hit == 0 {
            return None;
        }
        Some((site.to_string(), hit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_all_off() {
        // The test runner environment must not leak SPECPMT_* settings
        // into this assertion; construct from a scrubbed environment.
        for (k, _) in std::env::vars() {
            if k.starts_with("SPECPMT_") {
                // Defaults can't be asserted under an externally-set knob.
                return;
            }
        }
        let k = Knobs::from_env();
        assert!(!k.telemetry && !k.trace && !k.group_commit && !k.bench_smoke);
        assert_eq!(k.trace_cap, None);
        assert_eq!(k.group_linger_ns, 0);
        assert_eq!(k.commit_baseline, None);
        assert_eq!(k.crash_target, None);
    }

    #[test]
    fn crash_target_parses_site_and_hit() {
        assert_eq!(
            Knobs::parse_crash_target("seq/commit/flush:2"),
            Some(("seq/commit/flush".to_string(), 2))
        );
        assert_eq!(Knobs::parse_crash_target("no-colon"), None);
        assert_eq!(Knobs::parse_crash_target("site:0"), None, "hit counts are 1-based");
        assert_eq!(Knobs::parse_crash_target(":3"), None);
        assert_eq!(Knobs::parse_crash_target("a/b:x"), None);
    }
}
