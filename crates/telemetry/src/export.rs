//! Live time-series export: periodic [`Registry`] delta snapshots
//! rendered as a `series` JSON block.
//!
//! The flight recorder (DESIGN.md §4.11) covers the *post-mortem* side of
//! observability; this module covers the *live* side with the same event
//! vocabulary. A bench or service loop calls
//! [`Registry::snapshot_delta`][crate::Registry::snapshot_delta] at a
//! fixed cadence, pushes each delta into a [`Series`], and emits the
//! whole series into its JSON artifact — every point carries the
//! interval's counter increments and phase count/sum deltas, so
//! throughput dips and latency spikes are attributable to a moment, not
//! smeared over the run.

use crate::json::JsonWriter;
use crate::metrics::{DeltaSnapshot, Metric, Phase, METRIC_NAMES, PHASE_NAMES};

/// Phases whose count/sum deltas every series point carries (the hot
/// commit pipeline plus the two stall sources txstat attributes to).
pub const SERIES_PHASES: [Phase; 5] =
    [Phase::Commit, Phase::CommitSim, Phase::WpqDrain, Phase::LockWait, Phase::BatchWait];

/// One sampled interval: the registry deltas since the previous point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Sample time (caller-supplied ns since the run started).
    pub at_ns: u64,
    /// Counter and phase deltas over the interval.
    pub delta: DeltaSnapshot,
}

/// An append-only sequence of interval snapshots plus its JSON writer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Series {
    points: Vec<SeriesPoint>,
}

impl Series {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one interval sample.
    pub fn push(&mut self, at_ns: u64, delta: DeltaSnapshot) {
        self.points.push(SeriesPoint { at_ns, delta });
    }

    /// Number of sampled intervals.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sampled points, oldest first.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Emits `"series":{"points_len":N,"points":[{...}]}` into the
    /// caller's open object. Every point carries `at_ns`, all
    /// [`METRIC_NAMES`] counter deltas, and `<phase>_count` /
    /// `<phase>_sum_ns` for each of [`SERIES_PHASES`] — a fixed schema
    /// the verify tier checks.
    pub fn emit_field(&self, w: &mut JsonWriter) {
        w.begin_object_field("series");
        w.field_u64("points_len", self.points.len() as u64);
        w.begin_array_field("points");
        for p in &self.points {
            w.begin_object();
            w.field_u64("at_ns", p.at_ns);
            for (i, name) in METRIC_NAMES.iter().enumerate() {
                w.field_u64(name, p.delta.metrics[i]);
            }
            for ph in SERIES_PHASES {
                let name = PHASE_NAMES[ph as usize];
                w.field_u64(&format!("{name}_count"), p.delta.phase_counts[ph as usize]);
                w.field_u64(&format!("{name}_sum_ns"), p.delta.phase_sums[ph as usize]);
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }

    /// Sum of one counter's deltas across all points (cross-check hook:
    /// must never exceed the registry's cumulative counter).
    pub fn total(&self, m: Metric) -> u64 {
        self.points.iter().map(|p| p.delta.metrics[m as usize]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn deltas_reset_between_points_and_sum_to_totals() {
        let r = Registry::new(2);
        r.set_enabled(true);
        let mut series = Series::new();
        let d0 = r.snapshot_delta();
        assert_eq!(d0.metrics[Metric::Commits as usize], 0, "baseline delta is empty");

        r.add(0, Metric::Commits, 3);
        r.record(0, Phase::Commit, 100);
        series.push(1_000, r.snapshot_delta());

        r.add(1, Metric::Commits, 2);
        r.record(1, Phase::Commit, 50);
        series.push(2_000, r.snapshot_delta());

        assert_eq!(series.len(), 2);
        assert_eq!(series.points()[0].delta.metrics[Metric::Commits as usize], 3);
        assert_eq!(series.points()[1].delta.metrics[Metric::Commits as usize], 2);
        assert_eq!(series.points()[1].delta.phase_counts[Phase::Commit as usize], 1);
        assert_eq!(series.points()[1].delta.phase_sums[Phase::Commit as usize], 50);
        assert_eq!(series.total(Metric::Commits), r.counter(Metric::Commits));
    }

    #[test]
    fn emit_has_the_fixed_schema() {
        let r = Registry::new(1);
        r.set_enabled(true);
        r.add(0, Metric::Fences, 1);
        let mut series = Series::new();
        series.push(500, r.snapshot_delta());
        let mut w = JsonWriter::new();
        w.begin_object();
        series.emit_field(&mut w);
        w.end_object();
        let j = w.finish();
        assert!(j.contains("\"series\":{\"points_len\":1,\"points\":[{"), "{j}");
        assert!(j.contains("\"at_ns\":500"), "{j}");
        assert!(j.contains("\"fences\":1"), "{j}");
        assert!(j.contains("\"commit_count\":0"), "{j}");
        assert!(j.contains("\"commit_sim_sum_ns\":0"), "{j}");
    }

    #[test]
    fn delta_survives_registry_reset_without_underflow() {
        let r = Registry::new(1);
        r.set_enabled(true);
        r.add(0, Metric::Commits, 5);
        let _ = r.snapshot_delta();
        r.reset();
        r.add(0, Metric::Commits, 1);
        let d = r.snapshot_delta();
        assert_eq!(d.metrics[Metric::Commits as usize], 1, "reset re-baselines the delta state");
    }
}
