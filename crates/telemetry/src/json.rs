//! Hand-rolled JSON emission, matching the bench harness's one-line style.
//!
//! The workspace is zero-dependency by policy (`scripts/verify.sh` builds
//! offline), so there is no serde. [`JsonWriter`] is a tiny append-only
//! builder that tracks comma placement with a nesting stack; [`StatExport`]
//! is the common export hook the per-crate stat structs (`PmemStats`,
//! `ReclaimStats`, `LockTableStats`, …) implement so bench phases stop
//! hand-rolling field lists.

/// Append-only JSON builder. Values are written in document order; the
/// writer inserts commas and handles string escaping. Nesting is tracked
/// with a small stack so objects and arrays can be interleaved freely.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open container: `true` once the first element has
    /// been written (so the next element needs a leading comma).
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn comma(&mut self) {
        if let Some(top) = self.stack.last_mut() {
            if *top {
                self.buf.push(',');
            }
            *top = true;
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\t' => self.buf.push_str("\\t"),
                '\r' => self.buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Opens an anonymous object (top level or inside an array).
    pub fn begin_object(&mut self) -> &mut Self {
        self.comma();
        self.buf.push('{');
        self.stack.push(false);
        self
    }

    /// Opens an object-valued field: `"key":{`.
    pub fn begin_object_field(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push('{');
        self.stack.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array-valued field: `"key":[`.
    pub fn begin_array_field(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        self.stack.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.stack.pop();
        self.buf.push(']');
        self
    }

    /// Writes `"key":` (comma-managed); the next raw value call supplies
    /// the value. Prefer the typed `field_*` helpers.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.comma();
        self.push_escaped(key);
        self.buf.push(':');
        self
    }

    /// `"key":123`
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// `"key":-123`
    pub fn field_i64(&mut self, key: &str, v: i64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// `"key":1.50` (fixed two decimals — finite inputs only; non-finite
    /// values are clamped to `0.00` to keep the output valid JSON).
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        let v = if v.is_finite() { v } else { 0.0 };
        self.buf.push_str(&format!("{v:.2}"));
        self
    }

    /// `"key":"value"` (escaped).
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        self.push_escaped(v);
        self
    }

    /// `"key":true`
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Bare number inside an array.
    pub fn value_u64(&mut self, v: u64) -> &mut Self {
        self.comma();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Bare string inside an array (escaped).
    pub fn value_str(&mut self, v: &str) -> &mut Self {
        self.comma();
        self.push_escaped(v);
        self
    }

    /// Consumes the writer and returns the JSON text.
    pub fn finish(self) -> String {
        self.buf
    }

    /// Borrowed view of the text built so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

/// Common export hook for stat structs across the workspace.
///
/// Implementors emit their fields into an object the *caller* has opened:
///
/// ```
/// use specpmt_telemetry::{JsonWriter, StatExport};
///
/// struct Demo {
///     hits: u64,
/// }
/// impl StatExport for Demo {
///     fn export_name(&self) -> &'static str {
///         "demo"
///     }
///     fn emit(&self, w: &mut JsonWriter) {
///         w.field_u64("hits", self.hits);
///     }
/// }
///
/// let d = Demo { hits: 3 };
/// assert_eq!(d.to_json(), r#"{"hits":3}"#);
/// ```
pub trait StatExport {
    /// Stable block name, used as the JSON key when nesting this export
    /// inside a larger document (e.g. `"pmem":{...}`).
    fn export_name(&self) -> &'static str;

    /// Emits the struct's fields into an already-open JSON object.
    fn emit(&self, w: &mut JsonWriter);

    /// Renders the export as a standalone `{...}` object.
    fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        self.emit(&mut w);
        w.end_object();
        w.finish()
    }

    /// Emits the export as a named field (`"name":{...}`) of the
    /// caller's open object.
    fn emit_field(&self, w: &mut JsonWriter) {
        w.begin_object_field(self.export_name());
        self.emit(w);
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_objects_and_arrays() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "a\"b");
        w.field_u64("n", 7);
        w.begin_object_field("inner");
        w.field_bool("ok", true);
        w.field_f64("x", 1.5);
        w.end_object();
        w.begin_array_field("xs");
        w.value_u64(1).value_u64(2);
        w.value_str("three");
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"a\"b","n":7,"inner":{"ok":true,"x":1.50},"xs":[1,2,"three"]}"#
        );
    }

    #[test]
    fn non_finite_floats_are_clamped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("bad", f64::NAN);
        w.end_object();
        assert_eq!(w.finish(), r#"{"bad":0.00}"#);
    }

    #[test]
    fn control_chars_escape() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", "a\nb\u{1}");
        w.end_object();
        assert_eq!(w.finish(), "{\"s\":\"a\\nb\\u0001\"}");
    }
}
