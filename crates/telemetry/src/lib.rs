//! `specpmt-telemetry`: a unified, zero-dependency tracing + metrics
//! layer for the SpecPMT transaction, pmem, and reclamation stacks.
//!
//! Three pieces (DESIGN.md §4.7):
//!
//! * [`metrics`] — a per-thread [`Registry`] of named counters
//!   ([`Metric`]) and log2-bucketed latency histograms ([`Phase`],
//!   [`Histogram`]) with p50/p90/p99/max summaries and cheap
//!   `Instant`-based [`Span`] guards. Disabled by default: an inert span
//!   reads no clock and touches no atomics, keeping the telemetry-off
//!   commit path within its < 3% overhead budget.
//! * [`trace`] — a bounded per-thread ring-buffer [`Tracer`] recording
//!   the transaction lifecycle (begin / stage / seal / lock-acquire /
//!   clwb-plan / fence / commit / abort-retry / doom) plus reclamation
//!   and WPQ-drain events. Off by default; `SPECPMT_TRACE=1` enables it.
//! * [`json`] — a hand-rolled [`JsonWriter`] (the workspace is
//!   zero-dependency) and the [`StatExport`] trait that `PmemStats`,
//!   `ReclaimStats`, and `LockTableStats` implement so every stat block
//!   shares one JSON schema across live runs, benches, and `inspect`.
//!
//! A fourth piece rides along because this crate is the workspace's leaf:
//! [`knobs`] — the typed [`Knobs`] struct that parses every `SPECPMT_*`
//! environment variable once at startup (re-exported by `specpmt-core` as
//! `specpmt_core::knobs` for the upper layers).
//!
//! This crate sits below `specpmt-pmem` in the dependency graph and has
//! no dependencies of its own.

#![deny(missing_docs)]

pub mod blackbox;
pub mod export;
pub mod json;
pub mod knobs;
pub mod metrics;
pub mod trace;

pub use blackbox::{BbEvent, BbKind};
pub use export::{Series, SeriesPoint};
pub use json::{JsonWriter, StatExport};
pub use knobs::{KnobError, Knobs};
pub use metrics::{
    bucket_floor, bucket_of, DeltaSnapshot, Histogram, HistogramSnapshot, Metric, Phase, Registry,
    Span, BUCKETS, METRIC_COUNT, METRIC_NAMES, PHASE_COUNT, PHASE_NAMES,
};
pub use trace::{
    EventKind, TraceEvent, TraceSnapshot, Tracer, DEFAULT_CAPACITY, EVENT_KIND_COUNT,
    EVENT_KIND_NAMES,
};

/// One runtime's telemetry bundle: the metrics [`Registry`] and the event
/// [`Tracer`], sized to the same thread count. Both start in their
/// env-controlled default state (`SPECPMT_TELEMETRY` / `SPECPMT_TRACE`),
/// which is *off* unless set — an inert bundle costs one relaxed atomic
/// load per instrumentation site.
#[derive(Debug)]
pub struct Telemetry {
    /// Counters + phase-latency histograms.
    pub registry: Registry,
    /// Bounded per-thread lifecycle event rings.
    pub tracer: Tracer,
}

impl Telemetry {
    /// Builds a bundle with one registry shard and one trace ring per
    /// thread.
    pub fn new(threads: usize) -> Self {
        Self { registry: Registry::new(threads), tracer: Tracer::new(threads) }
    }

    /// Enables or disables metrics recording (counters + histograms).
    /// Tracing is controlled separately via [`Telemetry::set_tracing`].
    pub fn set_enabled(&self, on: bool) {
        self.registry.set_enabled(on);
    }

    /// Enables or disables event tracing.
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// Zeroes the registry and empties the trace rings.
    pub fn reset(&self) {
        self.registry.reset();
        self.tracer.clear();
    }

    /// Emits the merged metrics block plus a compact trace summary
    /// (`trace_events`, `trace_dropped`) into the caller's open object.
    /// Full event dumps go through
    /// [`Tracer::snapshot`]/[`TraceSnapshot::emit`].
    pub fn emit(&self, w: &mut JsonWriter) {
        self.registry.emit(w);
        let snap = self.tracer.snapshot();
        w.field_u64("trace_events", snap.events.len() as u64);
        w.field_u64("trace_dropped", snap.dropped);
    }
}

impl StatExport for Telemetry {
    fn export_name(&self) -> &'static str {
        "telemetry"
    }

    fn emit(&self, w: &mut JsonWriter) {
        Telemetry::emit(self, w);
    }
}
