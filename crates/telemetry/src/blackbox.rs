//! The persistent flight-recorder event vocabulary: compact binary
//! events, per-event checksums, and the deterministic post-crash merge.
//!
//! This module is the *format* half of the black box (DESIGN.md §4.11).
//! The write half — `BlackBoxSink` on `specpmt_pmem::SharedPmemDevice` —
//! encodes [`BbEvent`]s into fixed [`EVT_BYTES`]-byte slots of per-thread
//! PM-resident rings and piggybacks their cache lines onto flushes the
//! commit/reclaim/checkpoint paths already issue (zero extra fences).
//! The read half — `specpmt_core::recovery::forensics` — hands the raw
//! region bytes from a crash image back to [`decode_region`] here.
//!
//! Because ring slots are overwritten in place and never fenced on their
//! own, any individual slot can be torn at a crash. Every event therefore
//! carries an FNV-1a checksum over its other 32 bytes: a slot that fails
//! the checksum is *skipped and counted* ([`RingDecode::torn`]), never an
//! error — forensics degrades, recovery never fails on it.
//!
//! Decoded events merge across rings on the total order
//! `(ts, tid, seq)` — the same shape as replay's `(ts, chain_idx, pos)`
//! order — so one crash image always decodes to one event sequence.

use crate::json::JsonWriter;

/// Bytes per encoded event slot.
pub const EVT_BYTES: usize = 40;

/// Magic stamping a black-box region header (`"SPBBOX01"`).
pub const BBOX_MAGIC: u64 = 0x5350_4242_4f58_3031;

/// Bytes reserved for the region header ahead of ring 0 (64-byte aligned
/// so ring slots never share a line with the header).
pub const REGION_HDR: usize = 64;

/// Default events per ring (one ring per thread plus one for the
/// reclamation/checkpoint daemon).
pub const DEFAULT_RING_CAPACITY: usize = 256;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// What a flight-recorder event records. Operand meaning (`a`, `b`,
/// `aux`) is per-kind; `0` is reserved to mark a never-written slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BbKind {
    /// Transaction began. `a` = begin timestamp source (device-local ns).
    TxBegin = 1,
    /// Transaction commit *receipt*: staged only after the commit fence
    /// returned, so a persisted `TxCommit` implies the commit record was
    /// already durable (the forensic tail invariant). `a` = commit
    /// timestamp, `b` = crash-site index of the fence just completed
    /// (`specpmt_pmem::sites::ALL`), `aux` = 1 on the group path.
    TxCommit = 2,
    /// Transaction aborted. `a` = retry attempt number.
    TxAbort = 3,
    /// A fence/drain stalled beyond the configured threshold. `a` =
    /// stall ns, `b` = flushes the fence completed.
    FenceStall = 4,
    /// Group-commit batch sealed (recorded by the combiner after the
    /// batch fence). `a` = transactions in the batch, `b` = crash-site
    /// index of the batch fence.
    BatchSeal = 5,
    /// Reclamation spliced rebuilt chains in. `a` = records reclaimed,
    /// `b` = blocks freed.
    ReclaimSplice = 6,
    /// Checkpoint head spliced. `a` = checkpoint watermark timestamp,
    /// `b` = entries folded.
    CkptSplice = 7,
    /// KV governor shed a request. `a` = worst shard p99 ns, `b` =
    /// tenant id.
    GovShed = 8,
    /// KV governor quota decision (window exhausted). `a` = window ops,
    /// `b` = tenant id.
    GovQuota = 9,
    /// KV operation dispatched to a shard. `a` = key hash, `b` = shard,
    /// `aux` = op class ([`kv_op_name`]).
    KvOp = 10,
    /// KV operation completed. `a` = key hash, `b` = shard, `aux` = op
    /// class.
    KvOpDone = 11,
}

/// Number of [`BbKind`] variants (kinds are `1..=BB_KIND_COUNT`).
pub const BB_KIND_COUNT: usize = 11;

/// JSON/debug names for each [`BbKind`], index `kind - 1`.
pub const BB_KIND_NAMES: [&str; BB_KIND_COUNT] = [
    "tx_begin",
    "tx_commit",
    "tx_abort",
    "fence_stall",
    "batch_seal",
    "reclaim_splice",
    "ckpt_splice",
    "gov_shed",
    "gov_quota",
    "kv_op",
    "kv_op_done",
];

impl BbKind {
    /// Parses a raw kind byte (`None` for 0 or out-of-range values).
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Self::TxBegin),
            2 => Some(Self::TxCommit),
            3 => Some(Self::TxAbort),
            4 => Some(Self::FenceStall),
            5 => Some(Self::BatchSeal),
            6 => Some(Self::ReclaimSplice),
            7 => Some(Self::CkptSplice),
            8 => Some(Self::GovShed),
            9 => Some(Self::GovQuota),
            10 => Some(Self::KvOp),
            11 => Some(Self::KvOpDone),
            _ => None,
        }
    }

    /// Stable name for JSON and the human forensics table.
    pub fn name(self) -> &'static str {
        BB_KIND_NAMES[self as usize - 1]
    }
}

/// KV op-class codes carried in the `aux` byte of [`BbKind::KvOp`] /
/// [`BbKind::KvOpDone`] events (shared with `specpmt-kv`'s `OpClass`).
pub const KV_OP_GET: u8 = 0;
/// See [`KV_OP_GET`].
pub const KV_OP_PUT: u8 = 1;
/// See [`KV_OP_GET`].
pub const KV_OP_DEL: u8 = 2;
/// See [`KV_OP_GET`].
pub const KV_OP_CAS: u8 = 3;
/// See [`KV_OP_GET`].
pub const KV_OP_SCAN: u8 = 4;

/// Names a KV op-class code from an event's `aux` byte.
pub fn kv_op_name(aux: u8) -> &'static str {
    match aux {
        KV_OP_GET => "get",
        KV_OP_PUT => "put",
        KV_OP_DEL => "del",
        KV_OP_CAS => "cas",
        KV_OP_SCAN => "scan",
        _ => "unknown",
    }
}

/// One decoded flight-recorder event.
///
/// Encoded slot layout (little-endian, [`EVT_BYTES`] = 40 bytes):
///
/// ```text
/// 0  .. 8   ts (device-local ns at record time, or the commit ts)
/// 8  .. 16  a  (per-kind operand)
/// 16 .. 24  b  (per-kind operand)
/// 24 .. 28  seq (u32, per-ring monotone sequence number)
/// 28 .. 30  tid (u16, recording ring)
/// 30        kind (u8, 0 = empty slot)
/// 31        aux (u8, per-kind operand)
/// 32 .. 40  FNV-1a checksum of bytes 0..32
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbEvent {
    /// Event timestamp (simulated device ns; commit ts for `TxCommit`).
    pub ts: u64,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Per-ring monotone sequence number.
    pub seq: u32,
    /// Recording ring (thread id; the last ring is the daemon's).
    pub tid: u16,
    /// Event kind.
    pub kind: BbKind,
    /// Third (byte) operand.
    pub aux: u8,
}

impl BbEvent {
    /// Encodes the event into one checksummed slot.
    pub fn encode(&self) -> [u8; EVT_BYTES] {
        let mut s = [0u8; EVT_BYTES];
        s[0..8].copy_from_slice(&self.ts.to_le_bytes());
        s[8..16].copy_from_slice(&self.a.to_le_bytes());
        s[16..24].copy_from_slice(&self.b.to_le_bytes());
        s[24..28].copy_from_slice(&self.seq.to_le_bytes());
        s[28..30].copy_from_slice(&self.tid.to_le_bytes());
        s[30] = self.kind as u8;
        s[31] = self.aux;
        let sum = fnv1a64(&s[0..32]);
        s[32..40].copy_from_slice(&sum.to_le_bytes());
        s
    }

    /// Emits the event as an object field set into `w`'s open object.
    pub fn emit(&self, w: &mut JsonWriter) {
        w.field_u64("ts", self.ts);
        w.field_u64("tid", self.tid as u64);
        w.field_u64("seq", self.seq as u64);
        w.field_str("kind", self.kind.name());
        w.field_u64("a", self.a);
        w.field_u64("b", self.b);
        w.field_u64("aux", self.aux as u64);
    }
}

/// Decode outcome for one ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// All-zero slot: never written.
    Empty,
    /// Checksum (or kind byte) does not validate: a torn or partially
    /// persisted write. Skipped, counted, never fatal.
    Torn,
    /// A fully persisted event.
    Ok(BbEvent),
}

/// Decodes one [`EVT_BYTES`] slot.
pub fn decode_slot(slot: &[u8]) -> SlotState {
    assert_eq!(slot.len(), EVT_BYTES, "slot must be exactly {EVT_BYTES} bytes");
    if slot.iter().all(|&b| b == 0) {
        return SlotState::Empty;
    }
    let sum = u64::from_le_bytes(slot[32..40].try_into().expect("8 bytes"));
    if sum != fnv1a64(&slot[0..32]) {
        return SlotState::Torn;
    }
    let Some(kind) = BbKind::from_u8(slot[30]) else {
        return SlotState::Torn;
    };
    SlotState::Ok(BbEvent {
        ts: u64::from_le_bytes(slot[0..8].try_into().expect("8 bytes")),
        a: u64::from_le_bytes(slot[8..16].try_into().expect("8 bytes")),
        b: u64::from_le_bytes(slot[16..24].try_into().expect("8 bytes")),
        seq: u32::from_le_bytes(slot[24..28].try_into().expect("4 bytes")),
        tid: u16::from_le_bytes(slot[28..30].try_into().expect("2 bytes")),
        kind,
        aux: slot[31],
    })
}

/// Total bytes of a black-box region holding `rings` rings of `capacity`
/// slots each (header included).
pub fn region_bytes(rings: usize, capacity: usize) -> usize {
    REGION_HDR + rings * capacity * EVT_BYTES
}

/// Builds the checksummed region header persisted once at pool format.
pub fn encode_region_header(rings: usize, capacity: usize) -> [u8; REGION_HDR] {
    let mut h = [0u8; REGION_HDR];
    h[0..8].copy_from_slice(&BBOX_MAGIC.to_le_bytes());
    h[8..12].copy_from_slice(&(rings as u32).to_le_bytes());
    h[12..16].copy_from_slice(&(capacity as u32).to_le_bytes());
    let sum = fnv1a64(&h[0..16]);
    h[16..24].copy_from_slice(&sum.to_le_bytes());
    h
}

/// Parses a region header: `Some((rings, capacity))` when the magic and
/// checksum validate and the geometry is sane.
pub fn decode_region_header(hdr: &[u8]) -> Option<(usize, usize)> {
    if hdr.len() < REGION_HDR {
        return None;
    }
    if u64::from_le_bytes(hdr[0..8].try_into().expect("8 bytes")) != BBOX_MAGIC {
        return None;
    }
    let sum = u64::from_le_bytes(hdr[16..24].try_into().expect("8 bytes"));
    if sum != fnv1a64(&hdr[0..16]) {
        return None;
    }
    let rings = u32::from_le_bytes(hdr[8..12].try_into().expect("4 bytes")) as usize;
    let capacity = u32::from_le_bytes(hdr[12..16].try_into().expect("4 bytes")) as usize;
    if rings == 0 || rings > 8192 || capacity == 0 || capacity > 1 << 24 {
        return None;
    }
    Some((rings, capacity))
}

/// One ring's decode: surviving events in sequence order plus the torn
/// and empty slot counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingDecode {
    /// Ring index (thread id; the last ring belongs to the daemon).
    pub tid: usize,
    /// Surviving events, ordered by `seq`.
    pub events: Vec<BbEvent>,
    /// Slots whose checksum failed (torn at the crash).
    pub torn: usize,
    /// Never-written slots.
    pub empty: usize,
}

/// A fully decoded black-box region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionDecode {
    /// Ring count (threads + 1 daemon ring).
    pub rings: Vec<RingDecode>,
    /// Events per ring.
    pub capacity: usize,
}

impl RegionDecode {
    /// Total surviving events across all rings.
    pub fn decoded(&self) -> usize {
        self.rings.iter().map(|r| r.events.len()).sum()
    }

    /// Total torn slots across all rings.
    pub fn torn(&self) -> usize {
        self.rings.iter().map(|r| r.torn).sum()
    }

    /// All surviving events merged on the deterministic total order
    /// `(ts, tid, seq)` — the forensic analogue of replay's
    /// `(ts, chain_idx, pos)` merge.
    pub fn merged(&self) -> Vec<BbEvent> {
        let mut out: Vec<BbEvent> =
            self.rings.iter().flat_map(|r| r.events.iter().copied()).collect();
        out.sort_by_key(|e| (e.ts, e.tid, e.seq));
        out
    }
}

/// Decodes a whole region (header + rings) from raw bytes, e.g. the
/// black-box slice of a crash image. Returns `None` only when the header
/// itself does not validate — ring damage degrades to skipped slots.
pub fn decode_region(bytes: &[u8]) -> Option<RegionDecode> {
    let (rings, capacity) = decode_region_header(bytes)?;
    if region_bytes(rings, capacity) > bytes.len() {
        return None;
    }
    let ring_bytes = capacity * EVT_BYTES;
    let mut out = Vec::with_capacity(rings);
    for tid in 0..rings {
        let base = REGION_HDR + tid * ring_bytes;
        let mut events = Vec::new();
        let mut torn = 0usize;
        let mut empty = 0usize;
        for slot in 0..capacity {
            let off = base + slot * EVT_BYTES;
            match decode_slot(&bytes[off..off + EVT_BYTES]) {
                SlotState::Empty => empty += 1,
                SlotState::Torn => torn += 1,
                SlotState::Ok(ev) => events.push(ev),
            }
        }
        events.sort_by_key(|e| e.seq);
        out.push(RingDecode { tid, events, torn, empty });
    }
    Some(RegionDecode { rings: out, capacity })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, tid: u16, seq: u32, kind: BbKind) -> BbEvent {
        BbEvent { ts, a: 7, b: 9, seq, tid, kind, aux: 3 }
    }

    #[test]
    fn encode_decode_round_trips() {
        let e = ev(123, 2, 5, BbKind::TxCommit);
        let slot = e.encode();
        assert_eq!(decode_slot(&slot), SlotState::Ok(e));
    }

    #[test]
    fn torn_slots_are_skipped_not_fatal() {
        let mut slot = ev(1, 0, 0, BbKind::TxBegin).encode();
        slot[4] ^= 0xFF; // tear the timestamp
        assert_eq!(decode_slot(&slot), SlotState::Torn);
        let zero = [0u8; EVT_BYTES];
        assert_eq!(decode_slot(&zero), SlotState::Empty);
        // An out-of-range kind byte with a "valid" checksum is torn too.
        let mut bogus = ev(1, 0, 0, BbKind::TxBegin).encode();
        bogus[30] = 99;
        let sum = fnv1a64(&bogus[0..32]);
        bogus[32..40].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode_slot(&bogus), SlotState::Torn);
    }

    #[test]
    fn region_round_trips_and_merges_deterministically() {
        let rings = 3;
        let cap = 4;
        let mut bytes = vec![0u8; region_bytes(rings, cap)];
        bytes[0..REGION_HDR].copy_from_slice(&encode_region_header(rings, cap));
        // Two events on ring 0, one on ring 2, one torn slot on ring 1.
        let write = |bytes: &mut Vec<u8>, tid: usize, slot: usize, e: &BbEvent| {
            let off = REGION_HDR + tid * cap * EVT_BYTES + slot * EVT_BYTES;
            bytes[off..off + EVT_BYTES].copy_from_slice(&e.encode());
        };
        write(&mut bytes, 0, 0, &ev(10, 0, 0, BbKind::TxBegin));
        write(&mut bytes, 0, 1, &ev(20, 0, 1, BbKind::TxCommit));
        write(&mut bytes, 2, 0, &ev(15, 2, 0, BbKind::ReclaimSplice));
        write(&mut bytes, 1, 0, &ev(12, 1, 0, BbKind::TxBegin));
        let torn_off = REGION_HDR + cap * EVT_BYTES;
        bytes[torn_off + 2] ^= 1;

        let dec = decode_region(&bytes).expect("header validates");
        assert_eq!(dec.capacity, cap);
        assert_eq!(dec.rings.len(), rings);
        assert_eq!(dec.decoded(), 3);
        assert_eq!(dec.torn(), 1);
        assert_eq!(dec.rings[1].torn, 1);
        assert_eq!(dec.rings[0].empty, 2);
        let merged = dec.merged();
        let key: Vec<(u64, u16)> = merged.iter().map(|e| (e.ts, e.tid)).collect();
        assert_eq!(key, vec![(10, 0), (15, 2), (20, 0)], "merge is (ts, tid, seq)-ordered");
    }

    #[test]
    fn corrupt_region_header_is_rejected() {
        let mut bytes = vec![0u8; region_bytes(1, 2)];
        assert!(decode_region(&bytes).is_none(), "zero header");
        bytes[0..REGION_HDR].copy_from_slice(&encode_region_header(1, 2));
        bytes[9] ^= 1;
        assert!(decode_region(&bytes).is_none(), "checksummed header rejects a torn ring count");
        // Geometry larger than the byte slice is rejected, not sliced.
        let hdr = encode_region_header(4, 1024);
        assert!(decode_region(&hdr).is_none());
    }

    #[test]
    fn kind_names_align() {
        for k in 1..=BB_KIND_COUNT as u8 {
            let kind = BbKind::from_u8(k).expect("in range");
            assert_eq!(kind as u8, k);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(BbKind::from_u8(0), None);
        assert_eq!(BbKind::from_u8(BB_KIND_COUNT as u8 + 1), None);
        assert_eq!(kv_op_name(KV_OP_CAS), "cas");
        assert_eq!(kv_op_name(200), "unknown");
    }
}
