//! Per-thread metrics registry: named counters and log2-bucketed latency
//! histograms with cheap `Instant`-based span guards.
//!
//! Design constraints (see DESIGN.md §4.7):
//!
//! * **Telemetry-off must be ~free.** The registry carries one
//!   `AtomicBool`; a [`Span`] opened while disabled holds `None` and its
//!   drop is a no-op — no clock read, no atomics. The `commit_path` bench
//!   budget is < 3% overhead with telemetry off.
//! * **No allocation on the hot path.** All storage (shards, buckets) is
//!   allocated when the registry is built; recording is `fetch_add` /
//!   `fetch_max` only.
//! * **Per-thread shards.** Each logical thread writes its own shard
//!   (relaxed atomics, no sharing), and snapshots merge shards on the
//!   cold export path.
//!
//! Histogram bucketing is exact at powers of two: value `0` lands in
//! bucket 0, and `v ∈ [2^k, 2^(k+1))` lands in bucket `k+1` — so `2^k - 1`
//! and `2^k` always fall in adjacent buckets (a tested invariant).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::JsonWriter;

/// Number of histogram buckets: bucket 0 for value 0, buckets `1..=64`
/// for `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// Bucket index for a recorded value (see module docs).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lower bound of a bucket (0 for bucket 0, else `2^(i-1)`), used as the
/// quantile representative — quantile estimates are therefore *lower
/// bounds* of the true quantile's bucket.
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Lock-free log2 histogram. Recording is two relaxed `fetch_add`s and a
/// `fetch_max`; snapshotting is a cold-path scan.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Zeroes every bucket and the sum/max trackers.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Copies the current state into an owned [`HistogramSnapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Live quantile estimate (see [`HistogramSnapshot::quantile`]) — the
    /// one quantile API every consumer (`KvStats`, txstat, benches) goes
    /// through instead of hand-rolling percentile math.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// Owned, mergeable histogram state with quantile summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all observations (for the mean).
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Quantile estimate: the lower bound of the bucket holding the
    /// `q`-th ranked observation (`q` in `[0,1]`). Returns 0 when empty;
    /// `q >= 1.0` returns the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        self.max
    }

    /// Folds another snapshot into this one (exact: bucket-wise add).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The p99.9 tail estimate (the quantile `specpmt-kv`'s SLO math
    /// keys on; exposed here so no consumer hand-rolls it).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Emits the standard summary fields (`count`, `sum_ns`, `mean_ns`,
    /// `p50_ns`, `p90_ns`, `p99_ns`, `p999_ns`, `max_ns`) into the
    /// caller's open object.
    pub fn emit(&self, w: &mut JsonWriter) {
        w.field_u64("count", self.count());
        w.field_u64("sum_ns", self.sum);
        w.field_f64("mean_ns", self.mean());
        w.field_u64("p50_ns", self.quantile(0.50));
        w.field_u64("p90_ns", self.quantile(0.90));
        w.field_u64("p99_ns", self.quantile(0.99));
        w.field_u64("p999_ns", self.p999());
        w.field_u64("max_ns", self.max);
    }
}

/// Instrumented phases — each gets a latency histogram per thread shard.
///
/// The first six are the sub-spans of one commit (the ISSUE's
/// writeset/seal/append/flush/fence/lock breakdown); `Commit` is the
/// whole-commit envelope (so per-phase sums ≤ commit is checkable);
/// the rest are cross-cutting waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Write-set build: staging in-place writes + undo/redo bookkeeping.
    Writeset = 0,
    /// Checksum seal: header encode + checksum over the payload.
    Seal = 1,
    /// Log append: reserving log space and storing the record.
    Append = 2,
    /// Flush planning + `clwb` of dirty lines.
    Flush = 3,
    /// The commit fence (`sfence`, incl. simulated WPQ drain stall).
    Fence = 4,
    /// Lock release (address locks and/or area locks).
    LockRelease = 5,
    /// Whole commit envelope (covers all six sub-phases).
    Commit = 6,
    /// Address-lock acquisition wait (spin + backoff) in the 2PL path.
    LockWait = 7,
    /// WPQ drain wait observed at a fence.
    WpqDrain = 8,
    /// One background reclamation cycle.
    ReclaimCycle = 9,
    /// Group commit: from staging a sealed record into the epoch batch
    /// until the batch fence retires (combiner election, the shared drain,
    /// and receipt handoff all live inside this span).
    BatchWait = 10,
    /// Group commit: *batch occupancy* — the histogram records the number
    /// of transactions each retired batch carried (a size distribution,
    /// not a latency; one observation per batch, recorded by the
    /// combiner).
    GroupBatch = 11,
    /// Commit cost in **simulated device nanoseconds**: the device work
    /// (stores, flush issue, fence stalls) charged to the committing
    /// thread's timeline during seal. Unlike the host-time `commit` span,
    /// this is deterministic and immune to scheduler preemption on
    /// oversubscribed hosts, so it is the number cross-runtime commit
    /// comparisons should use. Under group commit, waiters charge only
    /// their append work — the combiner's timeline absorbs the shared
    /// batch drain — so the mean directly shows fence amortization.
    CommitSim = 12,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 13;

/// JSON/bench names for each [`Phase`], index-aligned with the enum.
pub const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "writeset",
    "seal",
    "append",
    "flush",
    "fence",
    "lock",
    "commit",
    "lock_wait",
    "wpq_drain",
    "reclaim_cycle",
    "batch_wait",
    "group_batch_size",
    "commit_sim",
];

/// Monotone event counters kept per thread shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Transactions begun.
    Begins = 0,
    /// Transactions committed.
    Commits = 1,
    /// Transactions aborted (any reason).
    Aborts = 2,
    /// Conflict-driven abort→retry round trips.
    Retries = 3,
    /// Transactions doomed by a peer.
    Dooms = 4,
    /// Commit fences issued.
    Fences = 5,
    /// `clwb` flush plans executed (one per commit flush phase).
    ClwbPlans = 6,
    /// Log records appended.
    LogAppends = 7,
    /// WPQ drains observed at fences.
    WpqDrains = 8,
    /// Reclamation cycles run.
    ReclaimCycles = 9,
    /// Individual log *entries* appended (one per staged write that opened
    /// a new entry; in-place write-set patches do not count).
    LogEntries = 10,
    /// Commits that went through the group-commit (epoch batch) path.
    GroupCommits = 11,
    /// Epoch batches drained (each costs one shared flush+fence; the
    /// group path's fences-per-commit is `group_batches / group_commits`).
    GroupBatches = 12,
    /// Labeled crash-point sites hit while a site plan was armed (the
    /// crash-enumeration harness's per-run visit count; zero in normal
    /// operation because disarmed sites never reach telemetry).
    CrashPoints = 13,
}

/// Number of [`Metric`] variants.
pub const METRIC_COUNT: usize = 14;

/// JSON names for each [`Metric`], index-aligned with the enum.
pub const METRIC_NAMES: [&str; METRIC_COUNT] = [
    "begins",
    "commits",
    "aborts",
    "retries",
    "dooms",
    "fences",
    "clwb_plans",
    "log_appends",
    "wpq_drains",
    "reclaim_cycles",
    "log_entries",
    "group_commits",
    "group_batches",
    "crash_points",
];

/// Counter and phase deltas over one sampling interval, returned by
/// [`Registry::snapshot_delta`] and rendered by
/// [`crate::export::Series`]. All arrays are index-aligned with
/// [`Metric`] / [`Phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaSnapshot {
    /// Counter increments since the previous delta snapshot.
    pub metrics: [u64; METRIC_COUNT],
    /// Phase observation-count increments.
    pub phase_counts: [u64; PHASE_COUNT],
    /// Phase sum-of-observations increments (ns, except size-valued
    /// phases like `group_batch_size`).
    pub phase_sums: [u64; PHASE_COUNT],
}

impl Default for DeltaSnapshot {
    fn default() -> Self {
        Self {
            metrics: [0; METRIC_COUNT],
            phase_counts: [0; PHASE_COUNT],
            phase_sums: [0; PHASE_COUNT],
        }
    }
}

impl DeltaSnapshot {
    /// One counter's increment over the interval.
    pub fn metric(&self, m: Metric) -> u64 {
        self.metrics[m as usize]
    }

    /// One phase's (count, sum) increment over the interval.
    pub fn phase(&self, p: Phase) -> (u64, u64) {
        (self.phase_counts[p as usize], self.phase_sums[p as usize])
    }

    /// `true` when nothing was recorded in the interval.
    pub fn is_empty(&self) -> bool {
        self.metrics.iter().all(|&v| v == 0) && self.phase_counts.iter().all(|&v| v == 0)
    }
}

/// One thread's slice of the registry. Cache-line aligned so two threads
/// never share a shard line.
#[derive(Debug)]
#[repr(align(64))]
struct Shard {
    counters: [AtomicU64; METRIC_COUNT],
    phases: [Histogram; PHASE_COUNT],
}

impl Shard {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phases: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

/// Per-thread metrics registry. Owned by a runtime (`SpecSpmt` /
/// `SpecSpmtShared`); threads index their shard by `tid`.
///
/// Disabled by default; enable with [`Registry::set_enabled`] or by
/// setting `SPECPMT_TELEMETRY=1` in the environment at build time of the
/// registry.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    shards: Vec<Shard>,
    /// Cumulative totals at the last [`Registry::snapshot_delta`] call
    /// (cold path only — sampling cadence is per interval, not per op).
    delta_base: Mutex<DeltaSnapshot>,
}

impl Registry {
    /// Builds a registry with one shard per thread. Honors the
    /// `SPECPMT_TELEMETRY` env toggle for the initial enabled state.
    pub fn new(threads: usize) -> Self {
        let enabled = crate::Knobs::get().telemetry;
        Self {
            enabled: AtomicBool::new(enabled),
            shards: (0..threads.max(1)).map(|_| Shard::new()).collect(),
            delta_base: Mutex::new(DeltaSnapshot::default()),
        }
    }

    /// Whether recording is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (existing contents are kept).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    #[inline]
    fn shard(&self, tid: usize) -> &Shard {
        &self.shards[tid % self.shards.len()]
    }

    /// Bumps a counter by `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, tid: usize, m: Metric, n: u64) {
        if self.enabled() {
            self.shard(tid).counters[m as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records a pre-measured duration into a phase histogram (no-op
    /// while disabled).
    #[inline]
    pub fn record(&self, tid: usize, p: Phase, ns: u64) {
        if self.enabled() {
            self.shard(tid).phases[p as usize].record(ns);
        }
    }

    /// Opens a span guard over `p`; the elapsed nanoseconds are recorded
    /// when the guard drops (or [`Span::stop`] is called). While the
    /// registry is disabled the guard is inert: no clock read happens.
    #[inline]
    pub fn span(&self, tid: usize, p: Phase) -> Span<'_> {
        if self.enabled() {
            Span { live: Some((Instant::now(), &self.shard(tid).phases[p as usize])) }
        } else {
            Span { live: None }
        }
    }

    /// Sum of one counter across all shards.
    pub fn counter(&self, m: Metric) -> u64 {
        self.shards.iter().map(|s| s.counters[m as usize].load(Ordering::Relaxed)).sum()
    }

    /// Number of per-thread shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's value of one counter (no merging) — used to attribute
    /// activity to a specific thread, e.g. the reclamation daemon's
    /// dedicated shard vs the transaction threads.
    pub fn counter_in(&self, tid: usize, m: Metric) -> u64 {
        self.shard(tid).counters[m as usize].load(Ordering::Relaxed)
    }

    /// One shard's snapshot of one phase histogram (no merging).
    pub fn phase_in(&self, tid: usize, p: Phase) -> HistogramSnapshot {
        self.shard(tid).phases[p as usize].snapshot()
    }

    /// Merged (all-shard) snapshot of one phase histogram.
    pub fn phase(&self, p: Phase) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for s in &self.shards {
            out.merge(&s.phases[p as usize].snapshot());
        }
        out
    }

    /// Zeroes every counter and histogram in every shard, and
    /// re-baselines the [`Registry::snapshot_delta`] state so the next
    /// delta measures from the reset, not from before it.
    pub fn reset(&self) {
        for s in &self.shards {
            for c in &s.counters {
                c.store(0, Ordering::Relaxed);
            }
            for h in &s.phases {
                h.reset();
            }
        }
        if let Ok(mut base) = self.delta_base.lock() {
            *base = DeltaSnapshot::default();
        }
    }

    /// Returns the counter and phase increments since the previous
    /// `snapshot_delta` call (the first call measures from construction
    /// or the last [`Registry::reset`]) and advances the baseline — the
    /// sampling primitive behind the `series` block in the bench
    /// artifacts ([`crate::export::Series`]).
    ///
    /// Concurrent recorders may land between the per-entry reads; such
    /// late increments are never lost, they surface in the next delta
    /// (totals are monotone, and the baseline is the exact totals this
    /// call observed).
    pub fn snapshot_delta(&self) -> DeltaSnapshot {
        let mut now = DeltaSnapshot::default();
        for (m, slot) in now.metrics.iter_mut().enumerate() {
            *slot = self.shards.iter().map(|s| s.counters[m].load(Ordering::Relaxed)).sum();
        }
        for p in 0..PHASE_COUNT {
            let mut count = 0u64;
            let mut sum = 0u64;
            for s in &self.shards {
                let snap = s.phases[p].snapshot();
                count += snap.count();
                sum += snap.sum;
            }
            now.phase_counts[p] = count;
            now.phase_sums[p] = sum;
        }
        let mut base = self.delta_base.lock().unwrap_or_else(|e| e.into_inner());
        let mut delta = DeltaSnapshot::default();
        for i in 0..METRIC_COUNT {
            delta.metrics[i] = now.metrics[i].saturating_sub(base.metrics[i]);
        }
        for i in 0..PHASE_COUNT {
            delta.phase_counts[i] = now.phase_counts[i].saturating_sub(base.phase_counts[i]);
            delta.phase_sums[i] = now.phase_sums[i].saturating_sub(base.phase_sums[i]);
        }
        *base = now;
        delta
    }

    /// Emits the merged registry as fields of the caller's open object:
    /// `"enabled":…,"counters":{…},"phases":{…}` where each phase carries
    /// the standard histogram summary. Phases with zero observations are
    /// skipped to keep the block small.
    pub fn emit(&self, w: &mut JsonWriter) {
        self.emit_excluding(w, &[]);
    }

    /// [`Registry::emit`] restricted to the shards whose index is **not**
    /// in `exclude` — so a runtime with a dedicated daemon shard can emit
    /// the transaction threads' view without the daemon's drains and
    /// fences folded in (the daemon shard is emitted separately, keeping
    /// every observation attributed exactly once).
    pub fn emit_excluding(&self, w: &mut JsonWriter, exclude: &[usize]) {
        let keep = |i: &usize| !exclude.contains(i);
        w.field_bool("enabled", self.enabled());
        w.begin_object_field("counters");
        for (m, name) in METRIC_NAMES.iter().enumerate() {
            let v: u64 = (0..self.shards.len())
                .filter(keep)
                .map(|i| self.shards[i].counters[m].load(Ordering::Relaxed))
                .sum();
            w.field_u64(name, v);
        }
        w.end_object();
        w.begin_object_field("phases");
        for (p, name) in PHASE_NAMES.iter().enumerate() {
            let mut snap = HistogramSnapshot::default();
            for i in (0..self.shards.len()).filter(keep) {
                snap.merge(&self.shards[i].phases[p].snapshot());
            }
            if snap.count() == 0 {
                continue;
            }
            w.begin_object_field(name);
            snap.emit(w);
            w.end_object();
        }
        w.end_object();
    }
}

/// RAII phase-latency guard returned by [`Registry::span`].
#[derive(Debug)]
pub struct Span<'a> {
    live: Option<(Instant, &'a Histogram)>,
}

impl Span<'_> {
    /// An inert span (useful as a placeholder when no registry exists).
    pub fn disabled() -> Span<'static> {
        Span { live: None }
    }

    fn finish(&mut self) -> u64 {
        match self.live.take() {
            Some((t0, h)) => {
                let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                h.record(ns);
                ns
            }
            None => 0,
        }
    }

    /// Ends the span now, recording and returning the elapsed
    /// nanoseconds (0 if the span was inert).
    pub fn stop(mut self) -> u64 {
        self.finish()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_exact_at_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        for k in 0..63u32 {
            let p = 1u64 << k;
            assert_eq!(bucket_of(p), k as usize + 1, "2^{k} must open bucket {}", k + 1);
            if p > 1 {
                assert_eq!(bucket_of(p - 1), k as usize, "2^{k}-1 must stay in bucket {k}");
            }
            assert_eq!(bucket_of(p + (p >> 1)), k as usize + 1);
        }
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_quantiles_and_max() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        // p50 of 1..=1000 is 500, which lives in bucket [256, 512).
        assert_eq!(s.quantile(0.50), 256);
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.quantile(0.0), 1); // rank clamps to 1 → first value's bucket floor
    }

    #[test]
    fn snapshot_merge_is_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(4);
        b.record(4);
        b.record(1024);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 3);
        assert_eq!(s.buckets[bucket_of(4)], 2);
        assert_eq!(s.max, 1024);
        assert_eq!(s.sum, 1032);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new(2);
        r.set_enabled(false);
        r.add(0, Metric::Commits, 1);
        r.record(1, Phase::Commit, 99);
        drop(r.span(0, Phase::Fence));
        assert_eq!(r.counter(Metric::Commits), 0);
        assert_eq!(r.phase(Phase::Commit).count(), 0);
        assert_eq!(r.phase(Phase::Fence).count(), 0);
    }

    #[test]
    fn enabled_registry_merges_shards() {
        let r = Registry::new(4);
        r.set_enabled(true);
        for tid in 0..4 {
            r.add(tid, Metric::Commits, 2);
            r.record(tid, Phase::Seal, 8);
        }
        assert_eq!(r.counter(Metric::Commits), 8);
        let s = r.phase(Phase::Seal);
        assert_eq!(s.count(), 4);
        assert_eq!(s.max, 8);
        let span = r.span(2, Phase::Seal);
        let ns = span.stop();
        assert_eq!(r.phase(Phase::Seal).count(), 5);
        assert!(r.phase(Phase::Seal).max >= ns.min(8));
        r.reset();
        assert_eq!(r.counter(Metric::Commits), 0);
        assert_eq!(r.phase(Phase::Seal).count(), 0);
    }

    #[test]
    fn per_shard_access_and_exclusion_attribute_exactly_once() {
        let r = Registry::new(3);
        r.set_enabled(true);
        r.add(0, Metric::Fences, 4);
        r.add(2, Metric::Fences, 1); // the "daemon" shard
        r.record(0, Phase::WpqDrain, 100);
        r.record(2, Phase::WpqDrain, 900);
        assert_eq!(r.counter(Metric::Fences), 5);
        assert_eq!(r.counter_in(2, Metric::Fences), 1);
        assert_eq!(r.phase_in(2, Phase::WpqDrain).count(), 1);
        assert_eq!(r.phase_in(2, Phase::WpqDrain).max, 900);
        let mut w = JsonWriter::new();
        w.begin_object();
        r.emit_excluding(&mut w, &[2]);
        w.end_object();
        let j = w.finish();
        assert!(j.contains("\"fences\":4"), "{j}");
        assert!(!j.contains("\"max_ns\":900"), "daemon shard must be excluded: {j}");
    }

    #[test]
    fn emit_skips_empty_phases() {
        let r = Registry::new(1);
        r.set_enabled(true);
        r.record(0, Phase::Commit, 10);
        let mut w = JsonWriter::new();
        w.begin_object();
        r.emit(&mut w);
        w.end_object();
        let j = w.finish();
        assert!(j.contains("\"commit\":{"), "{j}");
        assert!(!j.contains("\"writeset\""), "{j}");
        assert!(j.contains("\"counters\""), "{j}");
    }
}
